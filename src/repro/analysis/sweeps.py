"""Generic parameter sweeps over the dispersal game.

Three reusable sweeps back several benchmarks and examples:

* :func:`coverage_ratio_sweep` — for a roster of congestion policies, how the
  equilibrium coverage (relative to the optimum) changes with the number of
  players ``k``;
* :func:`support_size_sweep` — how the support ``W`` of ``sigma_star`` grows
  with ``k`` for different value-function shapes (the "how widely does intense
  competition spread the population" question);
* :func:`dynamics_grid` — evolutionary-dynamics trajectories over a whole
  ``(family x M x k x initial condition)`` grid, evolved together by the
  batched :class:`~repro.batch.dynamics.DynamicsEngine`.

The closed-form sweeps evaluate their whole ``k`` grid in one
:mod:`repro.batch` pass per policy/family; the dynamics sweep chunks its row
grid into runner tasks (``repro.experiments.chunk_grid``) and each task steps
its chunk in a single engine run.  The registered ``sweep`` and ``dynamics``
experiments back the matching ``repro-dispersal`` CLI commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch import (
    DynamicsEngine,
    PaddedValues,
    exploitability_batch,
    make_rule,
    sigma_star_batch,
    spoa_batch,
)
from repro.core.policies import (
    CongestionPolicy,
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
)
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.analysis.observation1 import make_family
from repro.experiments.registry import register_experiment
from repro.experiments.runner import chunk_grid, resolve_batch_rows
from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import check_positive_integer

__all__ = [
    "SweepResult",
    "SweepPointRow",
    "DynamicsGridRow",
    "coverage_ratio_sweep",
    "support_size_sweep",
    "coverage_ratio_task",
    "build_sweep_spec",
    "assemble_sweep",
    "dynamics_grid_task",
    "build_dynamics_spec",
    "dynamics_grid",
]


@dataclass(frozen=True)
class SweepResult:
    """A labelled family of curves over a shared x-axis."""

    x_label: str
    x_values: np.ndarray
    curves: dict[str, np.ndarray] = field(default_factory=dict)

    def as_series(self) -> dict[str, np.ndarray]:
        """Column view (x first) suitable for CSV output."""
        series = {self.x_label: self.x_values}
        series.update(self.curves)
        return series


@dataclass(frozen=True)
class SweepPointRow:
    """One ``(policy, k)`` point of a coverage-ratio sweep.

    ``task_index`` is the position of the policy in the spec grid; the
    assembler groups rows by it, so curves never have to be re-inferred from
    the (possibly duplicated) policy names or ``k`` values.
    """

    policy_name: str
    m: int
    k: int
    ratio: float
    task_index: int = 0


def _coverage_ratio_curve(
    values: SiteValues, policy: CongestionPolicy, ks: np.ndarray, **solver_kwargs
) -> np.ndarray:
    """Equilibrium/optimal coverage for one policy over a whole ``k`` grid."""
    batch = spoa_batch([values], ks, policy, **solver_kwargs)
    optimal = batch.optimal_coverages[0]
    equilibrium = batch.equilibrium_coverages[0]
    return np.where(optimal > 0, equilibrium / np.where(optimal > 0, optimal, 1.0), 0.0)


def coverage_ratio_task(params: Mapping[str, Any], rng: np.random.Generator) -> list[SweepPointRow]:
    """Runner task: one policy's coverage-ratio curve over the ``k`` grid."""
    policy: CongestionPolicy = params["policy"]
    values = SiteValues.from_values(np.asarray(params["values"], dtype=float))
    ks = np.asarray([int(k) for k in params["k_values"]], dtype=np.int64)
    task_index = int(params.get("task_index", 0))
    ratios = _coverage_ratio_curve(values, policy, ks)
    return [
        SweepPointRow(
            policy_name=policy.name,
            m=values.m,
            k=int(k),
            ratio=float(r),
            task_index=task_index,
        )
        for k, r in zip(ks, ratios)
    ]


@register_experiment("sweep", "Coverage-ratio sweep over k for a roster of policies")
def build_sweep_spec(
    *,
    policies: Sequence[CongestionPolicy] | None = None,
    values: SiteValues | Sequence[float] | None = None,
    m: int = 20,
    k_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``sweep`` experiment (one task per policy).

    ``policies`` defaults to the three policies the paper names explicitly.
    """
    if policies is None:
        policies = [ExclusivePolicy(), SharingPolicy(), ConstantPolicy()]
    if values is None:
        values = SiteValues.zipf(check_positive_integer(m, "m"), exponent=1.0)
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(np.asarray(values))
    raw = tuple(float(v) for v in f.as_array())
    k_tuple = tuple(check_positive_integer(int(k), "k") for k in k_values)
    grid = [
        {"policy": policy, "values": raw, "k_values": k_tuple, "task_index": index}
        for index, policy in enumerate(policies)
    ]
    return ExperimentSpec(
        name="sweep",
        description=f"Equilibrium coverage / optimal coverage (M={f.m})",
        task=coverage_ratio_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "policies": tuple(policy.name for policy in policies),
            "m": f.m,
            "k_values": k_tuple,
        },
    )


def assemble_sweep(rows: Sequence[SweepPointRow]) -> SweepResult:
    """Fold per-point rows into the labelled-curves view.

    Curves are grouped by the rows' ``task_index`` (the exact per-policy task
    boundary recorded by the spec builder); a second policy with the same
    display name is disambiguated with a suffix, matching
    :func:`coverage_ratio_sweep`.
    """
    groups: dict[int, list[SweepPointRow]] = {}
    for row in rows:
        groups.setdefault(row.task_index, []).append(row)
    curves: dict[str, np.ndarray] = {}
    k_axis: np.ndarray = np.empty(0)
    for task_index in sorted(groups):
        points = groups[task_index]
        name = points[0].policy_name
        if name in curves:
            name = f"{name}-{len(curves)}"
        curves[name] = np.asarray([p.ratio for p in points])
        if not k_axis.size:
            # Every task shares the spec's k grid (duplicates preserved).
            k_axis = np.asarray([p.k for p in points], dtype=float)
    return SweepResult(x_label="k", x_values=k_axis, curves=curves)


def coverage_ratio_sweep(
    values: SiteValues | np.ndarray,
    policies: Sequence[CongestionPolicy],
    *,
    k_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    **solver_kwargs,
) -> SweepResult:
    """Equilibrium coverage / optimal coverage, per policy, as ``k`` grows."""
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
    ks = np.asarray([check_positive_integer(k, "k") for k in k_values], dtype=np.int64)
    curves: dict[str, np.ndarray] = {}
    for policy in policies:
        name = policy.name
        if name in curves:
            name = f"{name}-{len(curves)}"
        curves[name] = _coverage_ratio_curve(f, policy, ks, **solver_kwargs)
    return SweepResult(x_label="k", x_values=ks.astype(float), curves=curves)


@dataclass(frozen=True)
class DynamicsGridRow:
    """Outcome of one dynamics trajectory of a batched grid run.

    ``exploitability`` is the deviation gain at the final state (zero at an
    exact equilibrium); ``support_size`` counts the sites that retained
    non-negligible mass.
    """

    rule: str
    policy_name: str
    family: str
    m: int
    k: int
    init: str
    converged: bool
    iterations: int
    exploitability: float
    support_size: int


def _initial_state(init: str, values: SiteValues, rng: np.random.Generator) -> np.ndarray:
    """Materialise a named initial condition for one grid row."""
    if init == "uniform":
        return np.full(values.m, 1.0 / values.m)
    if init == "proportional":
        return Strategy.proportional(values.as_array()).as_array()
    if init == "random":
        return rng.dirichlet(np.ones(values.m))
    raise ValueError(f"unknown initial condition {init!r}")


def dynamics_grid_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[DynamicsGridRow]:
    """Runner task: evolve one chunk of grid rows in a single engine run.

    Every cell of the chunk — a ``(family, M, k, init)`` tuple — becomes one
    row of a ragged, mixed-``k`` batch; the :class:`DynamicsEngine` steps them
    all together and a single :func:`exploitability_batch` pass scores the
    final states.
    """
    rule_name = str(params["rule"])
    policy: CongestionPolicy = params["policy"]
    cells = tuple(params["cells"])
    max_iter = int(params["max_iter"])
    tol = float(params["tol"])

    instances = [make_family(str(family), int(m), rng) for family, m, _, _ in cells]
    padded = PaddedValues.from_instances(instances)
    ks = np.asarray([int(k) for _, _, k, _ in cells], dtype=np.int64)
    initial = np.zeros(padded.values.shape)
    for index, (values, (_, _, _, init)) in enumerate(zip(instances, cells)):
        initial[index, : values.m] = _initial_state(str(init), values, rng)

    engine = DynamicsEngine(
        padded, ks, policy, make_rule(rule_name), max_iter=max_iter, tol=tol
    )
    result = engine.run(initial)
    states = np.clip(result.states, 0.0, None)
    states /= states.sum(axis=1, keepdims=True)
    gaps = exploitability_batch(padded, states, ks, policy)

    return [
        DynamicsGridRow(
            rule=rule_name,
            policy_name=policy.name,
            family=str(family),
            m=values.m,
            k=int(k),
            init=str(init),
            converged=bool(result.converged[index]),
            iterations=int(result.iterations[index]),
            exploitability=float(gaps[index]),
            support_size=int(np.count_nonzero(states[index, : values.m] > 1e-9)),
        )
        for index, (values, (family, _, k, init)) in enumerate(zip(instances, cells))
    ]


@register_experiment("dynamics", "Batched dynamics sweep over (family, M, k, init) grids")
def build_dynamics_spec(
    *,
    rule: str = "discrete",
    policy: CongestionPolicy | None = None,
    families: Sequence[str] = ("uniform", "zipf", "geometric"),
    m_values: Sequence[int] = (6, 12),
    k_values: Sequence[int] = (2, 3, 5),
    inits: Sequence[str] = ("uniform", "proportional", "random"),
    batch_rows: int | None = None,
    max_iter: int = 20_000,
    tol: float = 1e-10,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``dynamics`` experiment.

    The full ``(family x M x k x init)`` grid is flattened into rows and
    chunked into one task per ``batch_rows`` rows, so a parallel runner
    parallelises across chunks while each task amortises the batched payoff
    kernel over its whole chunk.  ``batch_rows=None`` (the default)
    auto-tunes the chunk size from the grid length and the machine's CPU
    count (:func:`~repro.experiments.runner.auto_chunk_size`); pass the
    resolved value recorded in the result metadata to pin the chunking —
    and bit-identical results — across machines.
    """
    if policy is None:
        policy = SharingPolicy()
    make_rule(rule)  # fail fast on unknown rule names
    cells = [
        (str(family), check_positive_integer(int(m), "m"), check_positive_integer(int(k), "k"), str(init))
        for family in families
        for m in m_values
        for k in k_values
        for init in inits
    ]
    batch_rows = resolve_batch_rows(batch_rows, len(cells))
    grid = [
        {
            "rule": str(rule),
            "policy": policy,
            "cells": chunk,
            "max_iter": int(max_iter),
            "tol": float(tol),
        }
        for chunk in chunk_grid(cells, batch_rows)
    ]
    return ExperimentSpec(
        name="dynamics",
        description=f"{rule} dynamics under the {policy.name} policy ({len(cells)} trajectories)",
        task=dynamics_grid_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "rule": str(rule),
            "policy": policy.name,
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "inits": tuple(str(i) for i in inits),
            "batch_rows": int(batch_rows),
            "n_trajectories": len(cells),
        },
    )


def dynamics_grid(
    *,
    rule: str = "discrete",
    policy: CongestionPolicy | None = None,
    families: Sequence[str] = ("uniform", "zipf", "geometric"),
    m_values: Sequence[int] = (6, 12),
    k_values: Sequence[int] = (2, 3, 5),
    inits: Sequence[str] = ("uniform", "proportional", "random"),
    batch_rows: int | None = None,
    max_iter: int = 20_000,
    tol: float = 1e-10,
    seed: int = 0,
) -> list[DynamicsGridRow]:
    """Convenience entry point: build the ``dynamics`` spec and run it serially."""
    from repro.experiments.runner import run_experiment

    spec = build_dynamics_spec(
        rule=rule,
        policy=policy,
        families=families,
        m_values=m_values,
        k_values=k_values,
        inits=inits,
        batch_rows=batch_rows,
        max_iter=max_iter,
        tol=tol,
        seed=seed,
    )
    return list(run_experiment(spec).rows)


def support_size_sweep(
    value_families: dict[str, SiteValues],
    *,
    k_values: Sequence[int] = (2, 3, 5, 8, 13, 21, 34),
) -> SweepResult:
    """Support size ``W`` of ``sigma_star`` as a function of ``k`` for each family.

    Solved for every ``(family, k)`` cell in a single batched pass.
    """
    ks = np.asarray([check_positive_integer(k, "k") for k in k_values], dtype=np.int64)
    names = list(value_families)
    supports = sigma_star_batch(list(value_families.values()), ks).support_sizes
    curves = {
        name: supports[index].astype(float) for index, name in enumerate(names)
    }
    return SweepResult(x_label="k", x_values=ks.astype(float), curves=curves)
