"""Symmetric price of anarchy experiments (Corollary 5, Theorem 6, sharing bound).

Three claims are checked numerically:

* **Corollary 5** — the exclusive policy's per-instance SPoA equals 1 on every
  instance in the sweep (its equilibrium *is* the coverage optimum);
* **Theorem 6** — every other congestion policy admits an instance with SPoA
  strictly above 1; the certificate instance is the slowly-decreasing value
  profile from the paper's proof;
* **Kleinberg-Oren / Vetta bound** — the sharing policy's SPoA never exceeds 2
  on any instance encountered.

The registered ``spoa`` experiment covers all three as task kinds
(``worst-case`` / ``certificate`` / ``sharing-bound``) dispatched by
:func:`spoa_task`; each task evaluates its whole instance grid with one or
two :func:`repro.batch.spoa_batch` calls instead of per-instance loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch import spoa_batch
from repro.core.policies import (
    AggressivePolicy,
    CongestionPolicy,
    ConstantPolicy,
    ExclusivePolicy,
    ExponentialPolicy,
    PowerLawPolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.spoa import adversarial_values
from repro.core.values import SiteValues
from repro.analysis.observation1 import default_value_families
from repro.experiments.registry import register_experiment
from repro.experiments.runner import coerce_seed, run_experiment
from repro.experiments.spec import ExperimentSpec

__all__ = [
    "SPoARow",
    "CertificateRow",
    "SharingBoundRow",
    "spoa_experiment",
    "theorem6_certificates",
    "sharing_spoa_upper_bound_check",
    "default_policy_roster",
    "spoa_task",
    "build_spoa_spec",
]


@dataclass(frozen=True)
class SPoARow:
    """Worst per-instance SPoA found for one policy."""

    policy_name: str
    worst_ratio: float
    worst_m: int
    worst_k: int
    n_instances: int


@dataclass(frozen=True)
class CertificateRow:
    """Theorem 6 certificate: SPoA of one policy on the adversarial profile."""

    policy_name: str
    ratio: float
    m: int
    k: int


@dataclass(frozen=True)
class SharingBoundRow:
    """Largest sharing-policy SPoA found by a randomized instance search."""

    max_ratio: float
    n_instances: int


def default_policy_roster() -> list[CongestionPolicy]:
    """The congestion policies compared throughout the experiments."""
    return [
        ExclusivePolicy(),
        SharingPolicy(),
        ConstantPolicy(),
        TwoLevelPolicy(0.25),
        TwoLevelPolicy(-0.25),
        AggressivePolicy(0.5),
        PowerLawPolicy(0.5),
        PowerLawPolicy(2.0),
        ExponentialPolicy(1.0),
    ]


def _structured_and_random_instances(
    m_values: Sequence[int], n_random: int, rng: np.random.Generator
) -> list[SiteValues]:
    """The per-``M`` instance roster shared by the SPoA tasks."""
    instances: list[SiteValues] = []
    for m in m_values:
        m = int(m)
        instances.extend(make() for make in default_value_families(m).values())
        instances.extend(SiteValues.random(m, rng) for _ in range(int(n_random)))
    return instances


def _worst_case_task(params: Mapping[str, Any], rng: np.random.Generator) -> SPoARow:
    policy: CongestionPolicy = params["policy"]
    m_values = tuple(int(m) for m in params["m_values"])
    k_values = tuple(int(k) for k in params["k_values"])
    n_random = int(params["n_random"])

    instances = _structured_and_random_instances(m_values, n_random, rng)
    batch = spoa_batch(instances, k_values, policy)
    b, j = batch.argmax()
    worst_ratio = float(batch.ratios[b, j])
    worst_m = int(batch.padded.sizes[b])
    worst_k = int(batch.k_grid[j])
    count = batch.ratios.size

    # The Theorem 6 adversarial profile, per (M, k) pair, evaluated at its
    # own k only: one batched call per k over that k's ragged roster.
    for k in k_values:
        adversarial = [SiteValues.slowly_decreasing(max(int(m), 4 * k), k) for m in m_values]
        adv_batch = spoa_batch(adversarial, [k], policy)
        count += adv_batch.ratios.size
        index = int(np.argmax(adv_batch.ratios[:, 0]))
        ratio = float(adv_batch.ratios[index, 0])
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst_m = int(adv_batch.padded.sizes[index])
            worst_k = k
    return SPoARow(
        policy_name=policy.name,
        worst_ratio=worst_ratio,
        worst_m=worst_m,
        worst_k=worst_k,
        n_instances=count,
    )


def _certificate_task(params: Mapping[str, Any], rng: np.random.Generator) -> CertificateRow:
    policy: CongestionPolicy = params["policy"]
    k = int(params["k"])
    values = adversarial_values(policy, k, m=params.get("m"))
    batch = spoa_batch([values], [k], policy)
    return CertificateRow(
        policy_name=policy.name, ratio=float(batch.ratios[0, 0]), m=values.m, k=k
    )


def _sharing_bound_task(params: Mapping[str, Any], rng: np.random.Generator) -> SharingBoundRow:
    m_values = tuple(int(m) for m in params["m_values"])
    k_values = tuple(int(k) for k in params["k_values"])
    n_random = int(params["n_random"])
    policy = SharingPolicy()

    instances: list[SiteValues] = []
    for m in m_values:
        instances.extend(
            [
                SiteValues.uniform(m),
                SiteValues.linear(m),
                SiteValues.geometric(m, ratio=0.8),
                SiteValues.zipf(m, exponent=1.0),
            ]
        )
        instances.extend(SiteValues.slowly_decreasing(m, int(k)) for k in k_values)
        instances.extend(SiteValues.random(m, rng) for _ in range(n_random))
    batch = spoa_batch(instances, k_values, policy)
    return SharingBoundRow(
        max_ratio=float(batch.ratios.max()), n_instances=batch.ratios.size
    )


_TASK_KINDS = {
    "worst-case": _worst_case_task,
    "certificate": _certificate_task,
    "sharing-bound": _sharing_bound_task,
}


def spoa_task(params: Mapping[str, Any], rng: np.random.Generator):
    """Dispatching task of the ``spoa`` experiment (see module docstring)."""
    return _TASK_KINDS[str(params["kind"])](params, rng)


@register_experiment("spoa", "SPoA experiments: Corollary 5, Theorem 6, sharing bound")
def build_spoa_spec(
    *,
    policies: Sequence[CongestionPolicy] | None = None,
    m_values: Sequence[int] = (2, 5, 10),
    k_values: Sequence[int] = (2, 3, 5),
    n_random: int = 10,
    certificate_k: int = 3,
    sharing_k_values: Sequence[int] = (2, 3, 5, 8),
    sharing_m_values: Sequence[int] = (2, 5, 10, 25),
    sharing_n_random: int = 25,
    include_certificates: bool = True,
    include_sharing_bound: bool = True,
    quick: bool = False,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``spoa`` experiment.

    One ``worst-case`` task per policy, one ``certificate`` task per policy
    (Theorem 6) and one ``sharing-bound`` task; ``quick=True`` shrinks every
    grid to the CLI's fast preset.
    """
    if policies is None:
        policies = default_policy_roster()
    if quick:
        m_values, k_values, n_random = (2, 5), (2, 3), 3
        sharing_k_values, sharing_m_values, sharing_n_random = (2, 3), (2, 5), 5
    grid: list[dict[str, Any]] = [
        {
            "kind": "worst-case",
            "policy": policy,
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "n_random": int(n_random),
        }
        for policy in policies
    ]
    if include_certificates:
        grid.extend(
            {"kind": "certificate", "policy": policy, "k": int(certificate_k)}
            for policy in policies
        )
    if include_sharing_bound:
        grid.append(
            {
                "kind": "sharing-bound",
                "m_values": tuple(int(m) for m in sharing_m_values),
                "k_values": tuple(int(k) for k in sharing_k_values),
                "n_random": int(sharing_n_random),
            }
        )
    return ExperimentSpec(
        name="spoa",
        description="Symmetric Price of Anarchy",
        task=spoa_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "policies": tuple(policy.name for policy in policies),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "n_random": int(n_random),
        },
    )


def spoa_experiment(
    policies: Sequence[CongestionPolicy] | None = None,
    *,
    m_values: Sequence[int] = (2, 5, 10),
    k_values: Sequence[int] = (2, 3, 5),
    n_random: int = 10,
    rng: np.random.Generator | int | None = 0,
) -> list[SPoARow]:
    """Evaluate the per-instance SPoA of each policy over a grid of instances."""
    spec = build_spoa_spec(
        policies=policies,
        m_values=m_values,
        k_values=k_values,
        n_random=n_random,
        include_certificates=False,
        include_sharing_bound=False,
        seed=coerce_seed(rng),
    )
    return list(run_experiment(spec).rows)


def theorem6_certificates(
    policies: Sequence[CongestionPolicy] | None = None,
    *,
    k: int = 3,
) -> dict[str, float]:
    """Per-policy SPoA on the Theorem 6 adversarial instance.

    Every non-exclusive policy should return a value strictly above 1; the
    exclusive policy returns exactly 1.
    """
    if policies is None:
        policies = default_policy_roster()
    spec = ExperimentSpec(
        name="spoa-certificates",
        description="Theorem 6 certificates",
        task=spoa_task,
        grid=tuple(
            {"kind": "certificate", "policy": policy, "k": int(k)} for policy in policies
        ),
    )
    certificates: dict[str, float] = {}
    for row in run_experiment(spec).rows:
        key = row.policy_name
        if key in certificates:
            key = f"{key}-{len(certificates)}"
        certificates[key] = float(row.ratio)
    return certificates


def sharing_spoa_upper_bound_check(
    *,
    k_values: Sequence[int] = (2, 3, 5, 8),
    m_values: Sequence[int] = (2, 5, 10, 25),
    n_random: int = 25,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Largest sharing-policy SPoA found across a randomized search (should be <= 2)."""
    spec = ExperimentSpec(
        name="spoa-sharing-bound",
        description="Sharing-policy SPoA randomized search",
        task=spoa_task,
        grid=(
            {
                "kind": "sharing-bound",
                "m_values": tuple(int(m) for m in m_values),
                "k_values": tuple(int(k) for k in k_values),
                "n_random": int(n_random),
            },
        ),
        seed=coerce_seed(rng),
    )
    (row,) = run_experiment(spec).rows
    return float(row.max_ratio)
