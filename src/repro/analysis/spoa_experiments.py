"""Symmetric price of anarchy experiments (Corollary 5, Theorem 6, sharing bound).

Three claims are checked numerically:

* **Corollary 5** — the exclusive policy's per-instance SPoA equals 1 on every
  instance in the sweep (its equilibrium *is* the coverage optimum);
* **Theorem 6** — every other congestion policy admits an instance with SPoA
  strictly above 1; the certificate instance is the slowly-decreasing value
  profile from the paper's proof;
* **Kleinberg-Oren / Vetta bound** — the sharing policy's SPoA never exceeds 2
  on any instance encountered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.policies import (
    AggressivePolicy,
    CongestionPolicy,
    ConstantPolicy,
    ExclusivePolicy,
    ExponentialPolicy,
    PowerLawPolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.spoa import spoa_instance, spoa_lower_bound_certificate, spoa_search
from repro.core.values import SiteValues
from repro.analysis.observation1 import default_value_families

__all__ = ["SPoARow", "spoa_experiment", "theorem6_certificates", "default_policy_roster"]


@dataclass(frozen=True)
class SPoARow:
    """Worst per-instance SPoA found for one policy."""

    policy_name: str
    worst_ratio: float
    worst_m: int
    worst_k: int
    n_instances: int


def default_policy_roster() -> list[CongestionPolicy]:
    """The congestion policies compared throughout the experiments."""
    return [
        ExclusivePolicy(),
        SharingPolicy(),
        ConstantPolicy(),
        TwoLevelPolicy(0.25),
        TwoLevelPolicy(-0.25),
        AggressivePolicy(0.5),
        PowerLawPolicy(0.5),
        PowerLawPolicy(2.0),
        ExponentialPolicy(1.0),
    ]


def spoa_experiment(
    policies: Sequence[CongestionPolicy] | None = None,
    *,
    m_values: Sequence[int] = (2, 5, 10),
    k_values: Sequence[int] = (2, 3, 5),
    n_random: int = 10,
    rng: np.random.Generator | int | None = 0,
) -> list[SPoARow]:
    """Evaluate the per-instance SPoA of each policy over a grid of instances."""
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if policies is None:
        policies = default_policy_roster()

    rows: list[SPoARow] = []
    for policy in policies:
        worst_ratio = -np.inf
        worst_m = worst_k = 0
        count = 0
        for m in m_values:
            instances = [make() for make in default_value_families(m).values()]
            instances.extend(SiteValues.random(m, generator) for _ in range(n_random))
            for k in k_values:
                instances_k = instances + [SiteValues.slowly_decreasing(max(m, 4 * k), k)]
                for values in instances_k:
                    result = spoa_instance(values, k, policy)
                    count += 1
                    if result.ratio > worst_ratio:
                        worst_ratio = result.ratio
                        worst_m, worst_k = result.m, result.k
        rows.append(
            SPoARow(
                policy_name=policy.name,
                worst_ratio=float(worst_ratio),
                worst_m=worst_m,
                worst_k=worst_k,
                n_instances=count,
            )
        )
    return rows


def theorem6_certificates(
    policies: Sequence[CongestionPolicy] | None = None,
    *,
    k: int = 3,
) -> dict[str, float]:
    """Per-policy SPoA on the Theorem 6 adversarial instance.

    Every non-exclusive policy should return a value strictly above 1; the
    exclusive policy returns exactly 1.
    """
    if policies is None:
        policies = default_policy_roster()
    certificates: dict[str, float] = {}
    for policy in policies:
        result = spoa_lower_bound_certificate(policy, k)
        key = policy.name
        if key in certificates:
            key = f"{key}-{len(certificates)}"
        certificates[key] = float(result.ratio)
    return certificates


def sharing_spoa_upper_bound_check(
    *,
    k_values: Sequence[int] = (2, 3, 5, 8),
    m_values: Sequence[int] = (2, 5, 10, 25),
    n_random: int = 25,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """Largest sharing-policy SPoA found across a randomized search (should be <= 2)."""
    ratio, _ = spoa_search(
        SharingPolicy(),
        k_values=tuple(k_values),
        m_values=tuple(m_values),
        n_random=n_random,
        rng=rng,
    )
    return float(ratio)
