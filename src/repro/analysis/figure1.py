"""Regeneration of Figure 1: coverage as a function of the competition extent.

The paper's Figure 1 considers two players competing over two sites with
``f = (1, 0.3)`` (left panel) and ``f = (1, 0.5)`` (right panel).  The x-axis
parameterises the congestion function ``C_c`` (``C_c(1) = 1``,
``C_c(2) = c``) over ``c in [-0.5, 0.5]``; ``c = 0`` is the exclusive policy
and ``c = 0.5`` the sharing policy.  Three curves are plotted:

* the coverage of the ESS (the IFD of ``C_c``) — red in the paper;
* the optimum coverage over all symmetric strategies — green (constant in
  ``c`` since the coverage functional does not depend on the policy);
* the coverage of the symmetric strategy maximising the players' payoffs
  ("welfare optimum") — blue.

The qualitative claims the reproduction checks: the ESS curve touches the
optimum exactly at ``c = 0`` and lies strictly below it elsewhere, and the
welfare-optimal curve coincides with the optimum for ``c <= 0`` and drops
below it as soon as colliding players keep a positive share.

Structured as a thin client of :mod:`repro.experiments`: each grid point
``(panel, c)`` is one task of the registered ``figure1`` experiment (every
``c`` value needs its own policy, so the batch solvers don't apply here and
the parallel runner carries the load instead); :func:`assemble_figure1_panels`
folds the task rows back into :class:`Figure1Data` series.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import TwoLevelPolicy
from repro.core.values import SiteValues
from repro.core.welfare import welfare_optimal_strategy
from repro.experiments.registry import register_experiment
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.utils.io import write_series
from repro.utils.validation import check_positive_integer

__all__ = [
    "Figure1Data",
    "Figure1PointRow",
    "figure1_data",
    "figure1_panels",
    "write_figure1_csv",
    "write_panels_csv",
    "figure1_point_task",
    "build_figure1_spec",
    "assemble_figure1_panels",
]


@dataclass(frozen=True)
class Figure1Data:
    """The three numeric series of one Figure 1 panel."""

    values: SiteValues
    k: int
    c_grid: np.ndarray
    ess_coverage: np.ndarray
    optimal_coverage: float
    welfare_optimum_coverage: np.ndarray

    def as_series(self) -> dict[str, np.ndarray]:
        """Column view suitable for CSV output."""
        return {
            "c": self.c_grid,
            "ess_coverage": self.ess_coverage,
            "optimal_coverage": np.full_like(self.c_grid, self.optimal_coverage),
            "welfare_optimum_coverage": self.welfare_optimum_coverage,
        }

    @property
    def argmax_c(self) -> float:
        """Competition extent at which the ESS coverage peaks."""
        return float(self.c_grid[int(np.argmax(self.ess_coverage))])

    @property
    def peak_gap(self) -> float:
        """Distance between the peak ESS coverage and the optimum (should be ~0 at c=0)."""
        return float(self.optimal_coverage - self.ess_coverage.max())


@dataclass(frozen=True)
class Figure1PointRow:
    """One ``(panel, c)`` grid point of the Figure 1 experiment.

    ``panel_index`` records which panel of the spec grid the point belongs
    to, so the assembler groups exactly (names may repeat when two panels
    share a ``second`` value; later same-name panels then win).
    """

    panel: str
    values: tuple[float, ...]
    k: int
    c: float
    ess_coverage: float
    optimal_coverage: float
    welfare_optimum_coverage: float
    panel_index: int = 0


def figure1_point_task(params: Mapping[str, Any], rng: np.random.Generator) -> Figure1PointRow:
    """Evaluate the three Figure 1 series at a single competition extent ``c``."""
    values = SiteValues.from_values(np.asarray(params["values"], dtype=float))
    k = int(params["k"])
    c = float(params["c"])
    welfare_grid_points = int(params["welfare_grid_points"])

    policy = TwoLevelPolicy(c)
    equilibrium = ideal_free_distribution(values, k, policy)
    welfare = welfare_optimal_strategy(values, k, policy, grid_points=welfare_grid_points)
    return Figure1PointRow(
        panel=str(params["panel"]),
        values=tuple(float(v) for v in values.as_array()),
        k=k,
        c=c,
        ess_coverage=float(coverage(values, equilibrium.strategy, k)),
        optimal_coverage=float(optimal_coverage(values, k)),
        welfare_optimum_coverage=float(welfare.coverage),
        panel_index=int(params.get("panel_index", 0)),
    )


def _panel_grid(
    panel: str,
    values: SiteValues,
    k: int,
    c_grid: np.ndarray,
    welfare_grid_points: int,
    panel_index: int = 0,
) -> list[dict[str, Any]]:
    if np.any(c_grid > 1.0):
        raise ValueError("collision payoffs c must be <= 1 to define a congestion policy")
    raw = tuple(float(v) for v in values.as_array())
    return [
        {
            "panel": panel,
            "values": raw,
            "k": int(k),
            "c": float(c),
            "welfare_grid_points": int(welfare_grid_points),
            "panel_index": int(panel_index),
        }
        for c in c_grid
    ]


@register_experiment("figure1", "Regenerate the two panels of Figure 1")
def build_figure1_spec(
    *,
    c_grid: np.ndarray | Sequence[float] | None = None,
    points: int = 101,
    second_values: Sequence[float] = (0.3, 0.5),
    k: int = 2,
    welfare_grid_points: int = 2001,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``figure1`` experiment (one task per panel point)."""
    k = check_positive_integer(k, "k")
    if c_grid is None:
        c_grid = np.linspace(-0.5, 0.5, int(points))
    c_grid = np.asarray(c_grid, dtype=float)
    grid: list[dict[str, Any]] = []
    for panel_index, second in enumerate(second_values):
        grid.extend(
            _panel_grid(
                f"f2={second:g}",
                SiteValues.two_sites(float(second)),
                k,
                c_grid,
                welfare_grid_points,
                panel_index=panel_index,
            )
        )
    return ExperimentSpec(
        name="figure1",
        description="Figure 1: coverage vs competition extent",
        task=figure1_point_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "second_values": tuple(float(s) for s in second_values),
            "k": int(k),
            "points": int(c_grid.size),
        },
    )


def assemble_figure1_panels(rows: Sequence[Figure1PointRow]) -> dict[str, Figure1Data]:
    """Fold per-point task rows back into per-panel series.

    Points are grouped by their ``panel_index`` (the exact panel boundary
    recorded by the spec builder); when two panels share a display name
    (duplicate ``second_values``) the later one wins, matching the
    dict-overwrite semantics of the pre-runner implementation.
    """
    groups: dict[int, list[Figure1PointRow]] = {}
    for row in rows:
        groups.setdefault(row.panel_index, []).append(row)
    panels: dict[str, list[Figure1PointRow]] = {}
    for panel_index in sorted(groups):
        panels[groups[panel_index][0].panel] = groups[panel_index]
    assembled: dict[str, Figure1Data] = {}
    for name, points in panels.items():
        assembled[name] = Figure1Data(
            values=SiteValues.from_values(np.asarray(points[0].values)),
            k=points[0].k,
            c_grid=np.array([p.c for p in points]),
            ess_coverage=np.array([p.ess_coverage for p in points]),
            optimal_coverage=float(points[0].optimal_coverage),
            welfare_optimum_coverage=np.array([p.welfare_optimum_coverage for p in points]),
        )
    return assembled


def figure1_data(
    values: SiteValues | np.ndarray,
    k: int = 2,
    *,
    c_grid: np.ndarray | None = None,
    welfare_grid_points: int = 2001,
) -> Figure1Data:
    """Compute the three Figure 1 series for one instance.

    Parameters
    ----------
    values:
        Site values of the panel (the paper uses ``(1, 0.3)`` and ``(1, 0.5)``).
    k:
        Number of players (the paper uses 2).
    c_grid:
        Grid of collision payoffs ``c``; defaults to 101 points on
        ``[-0.5, 0.5]``.
    welfare_grid_points:
        Resolution of the welfare-optimum search for two-site instances.
    """
    k = check_positive_integer(k, "k")
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
    if c_grid is None:
        c_grid = np.linspace(-0.5, 0.5, 101)
    c_grid = np.asarray(c_grid, dtype=float)
    if c_grid.size == 0:
        return Figure1Data(
            values=f,
            k=k,
            c_grid=c_grid,
            ess_coverage=np.empty(0),
            optimal_coverage=float(optimal_coverage(f, k)),
            welfare_optimum_coverage=np.empty(0),
        )
    spec = ExperimentSpec(
        name="figure1-panel",
        description="Figure 1 series for one instance",
        task=figure1_point_task,
        grid=tuple(_panel_grid("panel", f, k, c_grid, welfare_grid_points)),
    )
    (panel,) = assemble_figure1_panels(run_experiment(spec).rows).values()
    return panel


def figure1_panels(
    *,
    c_grid: np.ndarray | None = None,
    second_values: tuple[float, float] = (0.3, 0.5),
    k: int = 2,
    welfare_grid_points: int = 2001,
) -> dict[str, Figure1Data]:
    """Both panels of Figure 1 (``f = (1, 0.3)`` and ``f = (1, 0.5)`` by default)."""
    spec = build_figure1_spec(
        c_grid=c_grid,
        second_values=second_values,
        k=k,
        welfare_grid_points=welfare_grid_points,
    )
    return assemble_figure1_panels(run_experiment(spec).rows)


def write_panels_csv(panels: Mapping[str, Figure1Data], output_dir: str | Path) -> list[Path]:
    """Write one CSV per assembled panel into ``output_dir`` and return the paths."""
    directory = Path(output_dir)
    paths: list[Path] = []
    for name, panel in panels.items():
        safe = name.replace("=", "_").replace(".", "p")
        paths.append(write_series(directory / f"figure1_{safe}.csv", panel.as_series()))
    return paths


def write_figure1_csv(output_dir: str | Path, **kwargs) -> list[Path]:
    """Write one CSV per Figure 1 panel into ``output_dir`` and return the paths."""
    return write_panels_csv(figure1_panels(**kwargs), output_dir)
