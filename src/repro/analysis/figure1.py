"""Regeneration of Figure 1: coverage as a function of the competition extent.

The paper's Figure 1 considers two players competing over two sites with
``f = (1, 0.3)`` (left panel) and ``f = (1, 0.5)`` (right panel).  The x-axis
parameterises the congestion function ``C_c`` (``C_c(1) = 1``,
``C_c(2) = c``) over ``c in [-0.5, 0.5]``; ``c = 0`` is the exclusive policy
and ``c = 0.5`` the sharing policy.  Three curves are plotted:

* the coverage of the ESS (the IFD of ``C_c``) — red in the paper;
* the optimum coverage over all symmetric strategies — green (constant in
  ``c`` since the coverage functional does not depend on the policy);
* the coverage of the symmetric strategy maximising the players' payoffs
  ("welfare optimum") — blue.

The qualitative claims the reproduction checks: the ESS curve touches the
optimum exactly at ``c = 0`` and lies strictly below it elsewhere, and the
welfare-optimal curve coincides with the optimum for ``c <= 0`` and drops
below it as soon as colliding players keep a positive share.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import TwoLevelPolicy
from repro.core.values import SiteValues
from repro.core.welfare import welfare_optimal_strategy
from repro.utils.io import write_series
from repro.utils.validation import check_positive_integer

__all__ = ["Figure1Data", "figure1_data", "figure1_panels", "write_figure1_csv"]


@dataclass(frozen=True)
class Figure1Data:
    """The three numeric series of one Figure 1 panel."""

    values: SiteValues
    k: int
    c_grid: np.ndarray
    ess_coverage: np.ndarray
    optimal_coverage: float
    welfare_optimum_coverage: np.ndarray

    def as_series(self) -> dict[str, np.ndarray]:
        """Column view suitable for CSV output."""
        return {
            "c": self.c_grid,
            "ess_coverage": self.ess_coverage,
            "optimal_coverage": np.full_like(self.c_grid, self.optimal_coverage),
            "welfare_optimum_coverage": self.welfare_optimum_coverage,
        }

    @property
    def argmax_c(self) -> float:
        """Competition extent at which the ESS coverage peaks."""
        return float(self.c_grid[int(np.argmax(self.ess_coverage))])

    @property
    def peak_gap(self) -> float:
        """Distance between the peak ESS coverage and the optimum (should be ~0 at c=0)."""
        return float(self.optimal_coverage - self.ess_coverage.max())


def figure1_data(
    values: SiteValues | np.ndarray,
    k: int = 2,
    *,
    c_grid: np.ndarray | None = None,
    welfare_grid_points: int = 2001,
) -> Figure1Data:
    """Compute the three Figure 1 series for one instance.

    Parameters
    ----------
    values:
        Site values of the panel (the paper uses ``(1, 0.3)`` and ``(1, 0.5)``).
    k:
        Number of players (the paper uses 2).
    c_grid:
        Grid of collision payoffs ``c``; defaults to 101 points on
        ``[-0.5, 0.5]``.
    welfare_grid_points:
        Resolution of the welfare-optimum search for two-site instances.
    """
    k = check_positive_integer(k, "k")
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
    if c_grid is None:
        c_grid = np.linspace(-0.5, 0.5, 101)
    c_grid = np.asarray(c_grid, dtype=float)
    if np.any(c_grid > 1.0):
        raise ValueError("collision payoffs c must be <= 1 to define a congestion policy")

    best = optimal_coverage(f, k)
    ess_curve = np.empty(c_grid.size)
    welfare_curve = np.empty(c_grid.size)
    for index, c in enumerate(c_grid):
        policy = TwoLevelPolicy(float(c))
        equilibrium = ideal_free_distribution(f, k, policy)
        ess_curve[index] = coverage(f, equilibrium.strategy, k)
        welfare = welfare_optimal_strategy(f, k, policy, grid_points=welfare_grid_points)
        welfare_curve[index] = welfare.coverage

    return Figure1Data(
        values=f,
        k=k,
        c_grid=c_grid,
        ess_coverage=ess_curve,
        optimal_coverage=float(best),
        welfare_optimum_coverage=welfare_curve,
    )


def figure1_panels(
    *,
    c_grid: np.ndarray | None = None,
    second_values: tuple[float, float] = (0.3, 0.5),
    k: int = 2,
    welfare_grid_points: int = 2001,
) -> dict[str, Figure1Data]:
    """Both panels of Figure 1 (``f = (1, 0.3)`` and ``f = (1, 0.5)`` by default)."""
    panels: dict[str, Figure1Data] = {}
    for second in second_values:
        panel = figure1_data(
            SiteValues.two_sites(second),
            k,
            c_grid=c_grid,
            welfare_grid_points=welfare_grid_points,
        )
        panels[f"f2={second:g}"] = panel
    return panels


def write_figure1_csv(output_dir: str | Path, **kwargs) -> list[Path]:
    """Write one CSV per Figure 1 panel into ``output_dir`` and return the paths."""
    directory = Path(output_dir)
    paths: list[Path] = []
    for name, panel in figure1_panels(**kwargs).items():
        safe = name.replace("=", "_").replace(".", "p")
        paths.append(write_series(directory / f"figure1_{safe}.csv", panel.as_series()))
    return paths
