"""Registered experiments for the batched stochastic layer (search + mechanism).

Three experiments sweep the stochastic/mechanism subsystems over instance
grids, each task evaluating one *chunk* of grid cells through the batched
kernels (the same ``chunk_grid`` pattern as the ``dynamics`` and scenario
experiments, so the process-pool runner parallelises across chunks while
every task amortises its kernels over many rows):

* ``search`` — the Bayesian "treasure in M boxes" connection
  (:mod:`repro.batch.search`) over a ``(family x M x k)`` grid: for every
  round-strategy baseline the closed-form single-round success probability
  and expected discovery time (``inf`` rows mark strategies that ignore
  possible boxes) are cross-checked against one batched Monte-Carlo
  simulation of whole searches;
* ``coverage-times`` — the exact Von Schelling coverage-time laws
  (:mod:`repro.batch.coverage_times`) for the same round-strategy roster:
  expected full- and partial-coverage times and the CDF at a horizon,
  cross-validated in-row against the merged-search Monte-Carlo estimator
  (``z_score`` reports the SEM-normalised exact-vs-empirical gap; ``inf``
  rows mark strategies that skip sites and are excluded from simulation);
* ``mechanism`` — the paper's two design levers compared head to head
  (:mod:`repro.batch.mechanism`): a congestion-policy roster solved over the
  whole grid (Theorems 4-6) next to the Kleinberg-Oren reward design that
  re-prices sites under the sharing rule (Section 1.6), reporting both
  levers' coverage against the per-cell optimum.

The matching ``repro-dispersal search / coverage-times / mechanism`` CLI
sub-commands are thin clients of these builders, sharing the common
``--seed/--json/--workers/--backend`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.observation1 import make_family
from repro.analysis.scenario_experiments import policy_from_name
from repro.batch import (
    PaddedValues,
    as_visit_distribution_batch,
    compare_policies_batch,
    coverage_time_cdf_batch,
    estimate_coverage_time_mc,
    expected_coverage_time_batch,
    expected_discovery_time_batch,
    optimal_grant_design_batch,
    partial_coverage_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.batch.search import as_prior_batch, as_search_strategy_batch
from repro.experiments.registry import register_experiment
from repro.experiments.runner import chunk_grid, resolve_batch_rows
from repro.experiments.spec import ExperimentSpec
from repro.search.boxes import BayesianSearchProblem
from repro.search.strategies import (
    greedy_top_k_strategy,
    proportional_strategy,
    sigma_star_strategy,
    uniform_strategy,
)
from repro.utils.validation import check_positive_integer

__all__ = [
    "SEARCH_STRATEGY_FACTORIES",
    "SearchRow",
    "search_task",
    "build_search_spec",
    "CoverageTimeRow",
    "coverage_times_task",
    "build_coverage_times_spec",
    "MechanismPolicyRow",
    "GrantDesignRow",
    "mechanism_task",
    "build_mechanism_spec",
]

#: Named round-strategy factories of the ``search`` experiment (stable
#: identifiers used in specs and reports); each maps ``(problem, k)`` to a
#: :class:`~repro.core.strategy.Strategy` over the problem's boxes.
SEARCH_STRATEGY_FACTORIES = {
    "sigma_star": sigma_star_strategy,
    "uniform": lambda problem, k: uniform_strategy(problem),
    "proportional": lambda problem, k: proportional_strategy(problem),
    "greedy_top_k": greedy_top_k_strategy,
}


# --------------------------------------------------------------------------
# search
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchRow:
    """One round strategy on one ``(family, M, k)`` search problem.

    ``expected_rounds`` is the closed-form expected discovery time —
    ``inf`` when the strategy ignores a box the prior allows (greedy-top-k
    does this whenever ``k < M``); the empirical columns come from the
    batched whole-search simulation, whose ``max_rounds`` censoring makes
    ``empirical_mean_rounds`` a conditional (found-trials-only) mean.
    """

    strategy: str
    family: str
    m: int
    k: int
    success_probability: float
    expected_rounds: float
    empirical_success_rate: float
    empirical_mean_rounds: float
    empirical_round_one_rate: float
    n_trials: int
    max_rounds: int


def search_task(params: Mapping[str, Any], rng: np.random.Generator) -> list[SearchRow]:
    """Runner task: one chunk of cells through the batched search kernels.

    Every cell — a ``(family, M, k)`` tuple — becomes one row of the
    ``(B,)`` problem batch; each strategy of the roster is evaluated with
    one closed-form pass and one batched simulation over the whole chunk.
    """
    cells = tuple(params["cells"])
    roster = tuple(params["strategies"])
    n_trials = int(params["n_trials"])
    max_rounds = int(params["max_rounds"])

    problems = [
        BayesianSearchProblem.from_weights(make_family(str(family), int(m), rng).as_array())
        for family, m, _ in cells
    ]
    priors = as_prior_batch(problems)
    ks = np.asarray([int(k) for _, _, k in cells], dtype=np.int64)

    rows: list[SearchRow] = []
    for name in roster:
        factory = SEARCH_STRATEGY_FACTORIES[str(name)]
        matrix = as_search_strategy_batch(
            [factory(problem, int(k)) for problem, k in zip(problems, ks)], priors
        )
        successes = success_probability_batch(priors, matrix, ks)
        expected = expected_discovery_time_batch(priors, matrix, ks)
        simulated = simulate_search_batch(
            priors, matrix, ks, n_trials, max_rounds=max_rounds, rng=rng
        )
        rows.extend(
            SearchRow(
                strategy=str(name),
                family=str(family),
                m=int(m),
                k=int(k),
                success_probability=float(successes[index]),
                expected_rounds=float(expected[index]),
                empirical_success_rate=float(simulated.success_rates[index]),
                empirical_mean_rounds=float(simulated.mean_rounds_when_found[index]),
                empirical_round_one_rate=float(simulated.round_one_success_rates[index]),
                n_trials=n_trials,
                max_rounds=max_rounds,
            )
            for index, (family, m, k) in enumerate(cells)
        )
    return rows


@register_experiment(
    "search",
    "Bayesian box-search baselines: closed forms vs batched whole-search simulation",
)
def build_search_spec(
    *,
    strategies: Sequence[str] = ("sigma_star", "uniform", "proportional", "greedy_top_k"),
    families: Sequence[str] = ("zipf", "uniform", "geometric"),
    m_values: Sequence[int] = (8, 16),
    k_values: Sequence[int] = (2, 4, 8),
    n_trials: int = 600,
    max_rounds: int = 400,
    batch_rows: int | None = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``search`` experiment.

    The full ``(family, M, k)`` grid is flattened into cells and chunked into
    one task per ``batch_rows`` rows; each task packs its chunk into one
    problem batch and runs every roster strategy through one closed-form and
    one Monte-Carlo batched pass.
    """
    roster = [str(name) for name in strategies]
    for name in roster:
        if name not in SEARCH_STRATEGY_FACTORIES:
            available = ", ".join(sorted(SEARCH_STRATEGY_FACTORIES))
            raise ValueError(f"unknown search strategy {name!r}; available: {available}")
    cells = [
        (str(family), check_positive_integer(int(m), "m"), check_positive_integer(int(k), "k"))
        for family in families
        for m in m_values
        for k in k_values
    ]
    batch_rows = resolve_batch_rows(batch_rows, len(cells))
    grid = [
        {
            "cells": chunk,
            "strategies": tuple(roster),
            "n_trials": check_positive_integer(n_trials, "n_trials"),
            "max_rounds": check_positive_integer(max_rounds, "max_rounds"),
        }
        for chunk in chunk_grid(cells, batch_rows)
    ]
    return ExperimentSpec(
        name="search",
        description=(
            f"Parallel Bayesian search, {len(roster)} strategies on {len(cells)} problems"
        ),
        task=search_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "strategies": tuple(roster),
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "n_trials": int(n_trials),
            "max_rounds": int(max_rounds),
            "batch_rows": int(batch_rows),
            "n_cells": len(cells),
        },
    )


# --------------------------------------------------------------------------
# coverage-times
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageTimeRow:
    """One round strategy's coverage-time law on one ``(family, M, k)`` cell.

    The exact columns come from the Von Schelling inclusion-exclusion
    kernels: expected rounds until *all* sites are visited
    (``expected_rounds``, ``inf`` when the strategy skips a site), until any
    ``ceil(M / 2)`` distinct sites are visited (``expected_partial_rounds``),
    and ``P(T <= horizon)`` (``cdf_at_horizon``).  The empirical columns come
    from :func:`~repro.batch.coverage_times.estimate_coverage_time_mc`;
    ``z_score`` is the SEM-normalised exact-vs-empirical gap (``nan`` for
    uncoverable or censored rows, whose trials the estimator flags through
    ``censored_trials`` instead of silently biasing the mean).
    """

    strategy: str
    family: str
    m: int
    k: int
    expected_rounds: float
    expected_partial_rounds: float
    partial_j: int
    cdf_at_horizon: float
    horizon: int
    empirical_mean_rounds: float
    empirical_sem: float
    z_score: float
    censored_trials: int
    n_trials: int
    max_rounds: int


def coverage_times_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[CoverageTimeRow]:
    """Runner task: one chunk of cells through the coverage-time kernels.

    Every cell — a ``(family, M, k)`` tuple — becomes one row of the
    ``(B,)`` visit-distribution batch; each strategy of the roster is
    evaluated with one exact pass (expectation, partial expectation, CDF at
    the horizon) and one merged-search Monte-Carlo estimate over the whole
    chunk.  Uncoverable rows (strategies that skip sites) report ``inf``
    exact times and ``nan`` empirical columns; the estimator itself skips
    their simulation.
    """
    cells = tuple(params["cells"])
    roster = tuple(params["strategies"])
    n_trials = int(params["n_trials"])
    max_rounds = int(params["max_rounds"])
    horizon = int(params["horizon"])

    problems = [
        BayesianSearchProblem.from_weights(make_family(str(family), int(m), rng).as_array())
        for family, m, _ in cells
    ]
    ks = np.asarray([int(k) for _, _, k in cells], dtype=np.int64)
    js = np.asarray([-(-int(m) // 2) for _, m, _ in cells], dtype=np.int64)

    rows: list[CoverageTimeRow] = []
    for name in roster:
        factory = SEARCH_STRATEGY_FACTORIES[str(name)]
        probs, sizes = as_visit_distribution_batch(
            [factory(problem, int(k)) for problem, k in zip(problems, ks)]
        )
        expected = expected_coverage_time_batch(probs, ks, sizes=sizes)
        partial = partial_coverage_time_batch(probs, ks, js, sizes=sizes)
        cdf = coverage_time_cdf_batch(probs, ks, horizon, sizes=sizes)
        estimate = estimate_coverage_time_mc(
            probs, ks, n_trials, sizes=sizes, max_rounds=max_rounds, rng=rng
        )
        with np.errstate(invalid="ignore"):
            z_scores = np.abs(expected - estimate.means) / estimate.sems
        rows.extend(
            CoverageTimeRow(
                strategy=str(name),
                family=str(family),
                m=int(m),
                k=int(k),
                expected_rounds=float(expected[index]),
                expected_partial_rounds=float(partial[index]),
                partial_j=int(js[index]),
                cdf_at_horizon=float(cdf[index]),
                horizon=horizon,
                empirical_mean_rounds=float(estimate.means[index]),
                empirical_sem=float(estimate.sems[index]),
                z_score=float(z_scores[index]),
                censored_trials=int(estimate.censored_counts[index]),
                n_trials=n_trials,
                max_rounds=max_rounds,
            )
            for index, (family, m, k) in enumerate(cells)
        )
    return rows


@register_experiment(
    "coverage-times",
    "Exact Von Schelling coverage-time laws vs the merged-search Monte-Carlo estimator",
)
def build_coverage_times_spec(
    *,
    strategies: Sequence[str] = ("sigma_star", "uniform", "proportional", "greedy_top_k"),
    families: Sequence[str] = ("zipf", "uniform", "geometric"),
    m_values: Sequence[int] = (4, 6),
    k_values: Sequence[int] = (1, 2, 4),
    n_trials: int = 400,
    max_rounds: int = 4000,
    horizon: int = 64,
    batch_rows: int | None = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``coverage-times`` experiment.

    The full ``(family, M, k)`` grid is flattened into cells and chunked into
    one task per ``batch_rows`` rows; each task packs its chunk into one
    visit-distribution batch per strategy and runs one exact and one
    Monte-Carlo pass.  ``m_values`` should stay within the exact kernels'
    enumeration cap (:data:`repro.batch.coverage_times.DEFAULT_MAX_EXACT_SITES`).
    """
    roster = [str(name) for name in strategies]
    for name in roster:
        if name not in SEARCH_STRATEGY_FACTORIES:
            available = ", ".join(sorted(SEARCH_STRATEGY_FACTORIES))
            raise ValueError(f"unknown search strategy {name!r}; available: {available}")
    cells = [
        (str(family), check_positive_integer(int(m), "m"), check_positive_integer(int(k), "k"))
        for family in families
        for m in m_values
        for k in k_values
    ]
    batch_rows = resolve_batch_rows(batch_rows, len(cells))
    grid = [
        {
            "cells": chunk,
            "strategies": tuple(roster),
            "n_trials": check_positive_integer(n_trials, "n_trials"),
            "max_rounds": check_positive_integer(max_rounds, "max_rounds"),
            "horizon": check_positive_integer(horizon, "horizon"),
        }
        for chunk in chunk_grid(cells, batch_rows)
    ]
    return ExperimentSpec(
        name="coverage-times",
        description=(
            f"Coverage-time laws, {len(roster)} strategies on {len(cells)} problems"
        ),
        task=coverage_times_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "strategies": tuple(roster),
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "n_trials": int(n_trials),
            "max_rounds": int(max_rounds),
            "horizon": int(horizon),
            "batch_rows": int(batch_rows),
            "n_cells": len(cells),
        },
    )


# --------------------------------------------------------------------------
# mechanism
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MechanismPolicyRow:
    """One congestion policy on one ``(family, M, k)`` cell (the paper's lever)."""

    policy_name: str
    family: str
    m: int
    k: int
    equilibrium_coverage: float
    optimal_coverage: float
    spoa: float
    equilibrium_payoff: float
    support_size: int


@dataclass(frozen=True)
class GrantDesignRow:
    """The reward-design lever on one cell (the Kleinberg-Oren baseline).

    ``coverage_gap`` is ``optimal_coverage - induced_coverage`` — how much of
    the optimum the re-priced sharing game fails to reach (ideally ~0, at the
    cost of knowing ``k`` and being allowed to re-price sites).
    """

    family: str
    m: int
    k: int
    design_policy: str
    induced_coverage: float
    optimal_coverage: float
    coverage_gap: float
    max_deviation: float


def mechanism_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[MechanismPolicyRow | GrantDesignRow]:
    """Runner task: one chunk of cells through the batched mechanism kernels.

    One :func:`~repro.batch.mechanism.compare_policies_batch` call covers the
    whole ``(chunk x k x policy)`` grid; one
    :func:`~repro.batch.mechanism.optimal_grant_design_batch` call designs
    grants for every cell with its own ``k``.
    """
    cells = tuple(params["cells"])
    roster = [str(name) for name in params["policies"]]
    design_name = str(params["design_policy"])

    instances = [make_family(str(family), int(m), rng) for family, m, _ in cells]
    padded = PaddedValues.from_instances(instances)
    ks = np.asarray([int(k) for _, _, k in cells], dtype=np.int64)
    unique_ks = np.unique(ks)
    columns = np.searchsorted(unique_ks, ks)
    take = np.arange(padded.batch_size)

    policies = [policy_from_name(name) for name in roster]
    comparisons = compare_policies_batch(padded, unique_ks, policies)
    grants = optimal_grant_design_batch(padded, ks, policy_from_name(design_name))

    rows: list[MechanismPolicyRow | GrantDesignRow] = []
    for policy_index, name in enumerate(roster):
        rows.extend(
            MechanismPolicyRow(
                policy_name=str(name),
                family=str(family),
                m=int(m),
                k=int(k),
                equilibrium_coverage=float(
                    comparisons.equilibrium_coverages[policy_index, index, columns[index]]
                ),
                optimal_coverage=float(
                    comparisons.optimal_coverages[index, columns[index]]
                ),
                spoa=float(comparisons.spoa[policy_index, index, columns[index]]),
                equilibrium_payoff=float(
                    comparisons.equilibrium_payoffs[policy_index, index, columns[index]]
                ),
                support_size=int(
                    comparisons.support_sizes[policy_index, index, columns[index]]
                ),
            )
            for index, (family, m, k) in enumerate(cells)
        )
    optimal = comparisons.optimal_coverages[take, columns]
    rows.extend(
        GrantDesignRow(
            family=str(family),
            m=int(m),
            k=int(k),
            design_policy=design_name,
            induced_coverage=float(grants.induced_coverages[index]),
            optimal_coverage=float(optimal[index]),
            coverage_gap=float(optimal[index] - grants.induced_coverages[index]),
            max_deviation=float(grants.max_deviations[index]),
        )
        for index, (family, m, k) in enumerate(cells)
    )
    return rows


@register_experiment(
    "mechanism",
    "Congestion-rule design vs Kleinberg-Oren reward design over an instance grid",
)
def build_mechanism_spec(
    *,
    policies: Sequence[str] = ("exclusive", "sharing", "constant", "aggressive"),
    design_policy: str = "sharing",
    families: Sequence[str] = ("zipf", "uniform", "geometric"),
    m_values: Sequence[int] = (6, 12),
    k_values: Sequence[int] = (2, 4, 8),
    batch_rows: int | None = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``mechanism`` experiment.

    The paper's prediction (Theorems 4-6 / Section 1.6): the exclusive
    congestion rule reaches the coverage optimum without re-pricing, matching
    what the reward-design lever achieves only with per-``k`` grants.
    """
    roster = [str(name) for name in policies]
    for name in (*roster, str(design_policy)):
        policy_from_name(name)  # fail fast on unknown names
    cells = [
        (str(family), check_positive_integer(int(m), "m"), check_positive_integer(int(k), "k"))
        for family in families
        for m in m_values
        for k in k_values
    ]
    batch_rows = resolve_batch_rows(batch_rows, len(cells))
    grid = [
        {"cells": chunk, "policies": tuple(roster), "design_policy": str(design_policy)}
        for chunk in chunk_grid(cells, batch_rows)
    ]
    return ExperimentSpec(
        name="mechanism",
        description=(
            f"Mechanism comparison: {len(roster)} congestion rules vs "
            f"{design_policy}-policy grant design ({len(cells)} cells)"
        ),
        task=mechanism_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "policies": tuple(roster),
            "design_policy": str(design_policy),
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "batch_rows": int(batch_rows),
            "n_cells": len(cells),
        },
    )
