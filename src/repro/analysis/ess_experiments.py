"""Theorem 3 experiments: ``sigma_star`` is an ESS under the exclusive policy.

For a sweep of instances the experiment audits ``sigma_star`` against a
battery of mutants (pure strategies, uniform, value-proportional, local
perturbations, Dirichlet-random) using the ESS characterisation, and records
the worst strict-advantage margin together with an invasion-dynamics check
that small mutant populations die out.

Structured as a thin client of :mod:`repro.experiments`: the registered
``ess`` experiment has one task per ``(M, family)`` pair; each task solves
``sigma_star`` for its whole ``k`` grid in one :mod:`repro.batch` pass, runs
every invasion-dynamics check of the grid in one
:func:`~repro.batch.dynamics.invasion_batch` call, and then performs the
(inherently per-``k``) static mutant audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch import PaddedValues, invasion_batch, sigma_star_batch
from repro.core.ess import ess_report, invasion_barrier
from repro.core.policies import ExclusivePolicy
from repro.core.strategy import Strategy
from repro.analysis.observation1 import default_value_families, make_family
from repro.experiments.registry import register_experiment
from repro.experiments.runner import coerce_seed, run_experiment
from repro.experiments.spec import ExperimentSpec

__all__ = ["ESSRow", "ess_experiment", "ess_audit_task", "build_ess_spec"]


@dataclass(frozen=True)
class ESSRow:
    """Outcome of the ESS audit on one instance.

    ``mutant_suppressed`` records the invasion-dynamics check: starting from a
    small mutant share, the share must shrink (it may not reach numerical
    extinction within the iteration budget because selection against a mutant
    supported inside the resident's support is only second order in the share).
    """

    family: str
    m: int
    k: int
    is_ess: bool
    n_mutants: int
    worst_margin: float
    sample_invasion_barrier: float
    mutant_suppressed: bool
    mutant_final_share: float


def ess_audit_task(params: Mapping[str, Any], rng: np.random.Generator) -> list[ESSRow]:
    """Audit one ``(family, M)`` instance across its whole ``k`` grid."""
    family = str(params["family"])
    m = int(params["m"])
    k_values = tuple(int(k) for k in params["k_values"])
    n_random_mutants = int(params["n_random_mutants"])
    values = make_family(family, m, rng)
    policy = ExclusivePolicy()

    ks = np.asarray(k_values, dtype=np.int64)
    residents = sigma_star_batch([values], ks)

    # Sample mutants for the dynamic checks: value-proportional play, falling
    # back to a pure strategy when that coincides with the resident (e.g. on
    # uniform value profiles).  The whole ``k`` grid's invasion runs are one
    # batched engine call: row ``i`` pits ``sigma_star(k_i)`` against its
    # mutant.
    resident_matrix = residents.probabilities[0]  # (K, M)
    proportional = Strategy.proportional(values.as_array())
    mutants: list[Strategy] = []
    for k_index in range(ks.size):
        mutant = proportional
        if mutant.total_variation(Strategy(resident_matrix[k_index])) <= 1e-9:
            mutant = Strategy.point_mass(values.m, 0)
        mutants.append(mutant)
    mutant_matrix = np.stack([mutant.as_array() for mutant in mutants])
    initial_share = 0.02
    padded = PaddedValues.from_instances([values] * ks.size)
    dynamics = invasion_batch(
        padded,
        resident_matrix,
        mutant_matrix,
        ks,
        policy,
        initial_shares=initial_share,
    )

    rows: list[ESSRow] = []
    for k_index, k in enumerate(k_values):
        resident = residents.result(0, k_index).strategy
        report = ess_report(
            values,
            resident,
            k,
            policy,
            n_random_mutants=n_random_mutants,
            rng=rng,
        )
        barrier = invasion_barrier(values, resident, mutants[k_index], k, policy)
        final_share = float(dynamics.states[k_index, 0])
        fixated = final_share >= 1.0 - 1e-6
        suppressed = (not fixated) and (final_share < initial_share)
        rows.append(
            ESSRow(
                family=family,
                m=values.m,
                k=k,
                is_ess=report.is_ess,
                n_mutants=report.n_mutants,
                worst_margin=report.worst_margin,
                sample_invasion_barrier=barrier,
                mutant_suppressed=suppressed,
                mutant_final_share=final_share,
            )
        )
    return rows


@register_experiment("ess", "ESS audit of sigma_star (Theorem 3)")
def build_ess_spec(
    *,
    m_values: Sequence[int] = (3, 6),
    k_values: Sequence[int] = (2, 3, 5),
    n_random_mutants: int = 25,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``ess`` experiment (one task per family/M)."""
    k_tuple = tuple(int(k) for k in k_values)
    grid: list[dict[str, Any]] = []
    for m in m_values:
        for family in default_value_families(int(m)):
            grid.append(
                {
                    "family": family,
                    "m": int(m),
                    "k_values": k_tuple,
                    "n_random_mutants": int(n_random_mutants),
                }
            )
    return ExperimentSpec(
        name="ess",
        description="Theorem 3: sigma_star is an ESS under the exclusive policy",
        task=ess_audit_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "m_values": tuple(int(m) for m in m_values),
            "k_values": k_tuple,
            "n_random_mutants": int(n_random_mutants),
        },
    )


def ess_experiment(
    *,
    m_values: Sequence[int] = (3, 6),
    k_values: Sequence[int] = (2, 3, 5),
    n_random_mutants: int = 25,
    rng: np.random.Generator | int | None = 0,
) -> list[ESSRow]:
    """Audit ``sigma_star`` on a grid of instances; one row per ``(family, M, k)``.

    Thin client of the experiment runner (serial here; the CLI exposes the
    process-pool path).
    """
    spec = build_ess_spec(
        m_values=m_values,
        k_values=k_values,
        n_random_mutants=n_random_mutants,
        seed=coerce_seed(rng),
    )
    return list(run_experiment(spec).rows)
