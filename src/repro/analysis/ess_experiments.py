"""Theorem 3 experiments: ``sigma_star`` is an ESS under the exclusive policy.

For a sweep of instances the experiment audits ``sigma_star`` against a
battery of mutants (pure strategies, uniform, value-proportional, local
perturbations, Dirichlet-random) using the ESS characterisation, and records
the worst strict-advantage margin together with an invasion-dynamics check
that small mutant populations die out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.ess import ess_report, invasion_barrier
from repro.core.policies import ExclusivePolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.dynamics.invasion import invasion_dynamics
from repro.analysis.observation1 import default_value_families

__all__ = ["ESSRow", "ess_experiment"]


@dataclass(frozen=True)
class ESSRow:
    """Outcome of the ESS audit on one instance.

    ``mutant_suppressed`` records the invasion-dynamics check: starting from a
    small mutant share, the share must shrink (it may not reach numerical
    extinction within the iteration budget because selection against a mutant
    supported inside the resident's support is only second order in the share).
    """

    family: str
    m: int
    k: int
    is_ess: bool
    n_mutants: int
    worst_margin: float
    sample_invasion_barrier: float
    mutant_suppressed: bool
    mutant_final_share: float


def ess_experiment(
    *,
    m_values: Sequence[int] = (3, 6),
    k_values: Sequence[int] = (2, 3, 5),
    n_random_mutants: int = 25,
    rng: np.random.Generator | int | None = 0,
) -> list[ESSRow]:
    """Audit ``sigma_star`` on a grid of instances; one row per ``(family, M, k)``."""
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    policy = ExclusivePolicy()
    rows: list[ESSRow] = []
    for m in m_values:
        for family, make in default_value_families(m).items():
            values = make()
            for k in k_values:
                resident = sigma_star(values, k).strategy
                report = ess_report(
                    values,
                    resident,
                    k,
                    policy,
                    n_random_mutants=n_random_mutants,
                    rng=generator,
                )
                # Sample mutant for the dynamic checks: value-proportional play,
                # falling back to a pure strategy when that coincides with the
                # resident (e.g. on uniform value profiles).
                mutant = Strategy.proportional(values.as_array())
                if mutant.total_variation(resident) <= 1e-9:
                    mutant = Strategy.point_mass(values.m, 0)
                barrier = invasion_barrier(values, resident, mutant, k, policy)
                initial_share = 0.02
                dynamics = invasion_dynamics(
                    values, resident, mutant, k, policy, initial_share=initial_share
                )
                suppressed = (not dynamics.mutant_fixated) and (
                    dynamics.final_share < initial_share
                )
                rows.append(
                    ESSRow(
                        family=family,
                        m=values.m,
                        k=k,
                        is_ess=report.is_ess,
                        n_mutants=report.n_mutants,
                        worst_margin=report.worst_margin,
                        sample_invasion_barrier=barrier,
                        mutant_suppressed=suppressed,
                        mutant_final_share=dynamics.final_share,
                    )
                )
    return rows
