"""Numerical verification of Observation 1.

Observation 1 states that the optimal symmetric coverage is within a factor
``(1 - 1/e)`` of the full-coordination optimum (the sum of the ``k`` most
valuable sites)::

    Cover(p_star) > (1 - 1/e) * sum_{x <= k} f(x)

The experiment sweeps value-function families and player counts, recording the
achieved ratio ``Cover(p_star) / sum_{x <= k} f(x)`` — always above
``1 - 1/e ~ 0.632`` — and the intermediate uniform-over-top-k bound used in the
paper's one-line proof.

The module is a thin client of :mod:`repro.experiments`: each ``(family, M)``
pair is one task of the registered ``observation1`` experiment, and a task
evaluates its whole ``k`` grid in one :mod:`repro.batch` pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.batch import coverage_batch, sigma_star_batch
from repro.core.coverage import full_coordination_coverage
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.experiments.registry import register_experiment
from repro.experiments.runner import coerce_seed, run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import check_positive_integer

__all__ = [
    "Observation1Row",
    "observation1_experiment",
    "observation1_task",
    "build_observation1_spec",
    "default_value_families",
    "make_family",
]


@dataclass(frozen=True)
class Observation1Row:
    """One instance of the Observation 1 experiment."""

    family: str
    m: int
    k: int
    optimal_coverage: float
    top_k_coverage: float
    uniform_top_k_coverage: float
    ratio: float
    bound: float
    holds: bool


def default_value_families(m: int) -> Mapping[str, Callable[[], SiteValues]]:
    """The standard value-function families used across the experiment harness."""
    return {
        "uniform": lambda: SiteValues.uniform(m),
        "linear": lambda: SiteValues.linear(m),
        "geometric": lambda: SiteValues.geometric(m, ratio=0.85),
        "zipf": lambda: SiteValues.zipf(m, exponent=1.0),
        "exponential": lambda: SiteValues.exponential(m, rate=0.2),
    }


def make_family(family: str, m: int, rng: np.random.Generator) -> SiteValues:
    """Materialise a named family (``random-i`` draws from the task generator)."""
    if family.startswith("random"):
        return SiteValues.random(m, rng)
    return default_value_families(m)[family]()


def observation1_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[Observation1Row]:
    """One runner task: a single ``(family, M)`` instance over the whole k grid.

    All coverages are computed in one batched pass: ``sigma_star`` and the
    uniform-over-top-``k`` proof strategy are evaluated for every ``k`` at
    once via :func:`repro.batch.sigma_star_batch` / ``coverage_batch``.
    """
    family = str(params["family"])
    m = check_positive_integer(int(params["m"]), "m")
    k_values = tuple(int(k) for k in params["k_values"])
    values = make_family(family, m, rng)

    ks = np.asarray(k_values, dtype=np.int64)
    star = sigma_star_batch([values], ks)
    best = coverage_batch([values], star.probabilities, ks)[0]

    uniform_strategies = np.stack(
        [Strategy.uniform_over_top(values.m, int(k)).as_array() for k in ks]
    )[None, :, :]
    uniform_cover = coverage_batch([values], uniform_strategies, ks)[0]

    top_k = np.array([full_coordination_coverage(values, int(k)) for k in ks])

    bound = 1.0 - 1.0 / np.e
    rows: list[Observation1Row] = []
    for index, k in enumerate(ks):
        ratio = best[index] / top_k[index] if top_k[index] > 0 else np.inf
        rows.append(
            Observation1Row(
                family=family,
                m=m,
                k=int(k),
                optimal_coverage=float(best[index]),
                top_k_coverage=float(top_k[index]),
                uniform_top_k_coverage=float(uniform_cover[index]),
                ratio=float(ratio),
                bound=float(bound),
                holds=bool(best[index] > bound * top_k[index]),
            )
        )
    return rows


@register_experiment("observation1", "Check the (1 - 1/e) coverage bound of Observation 1")
def build_observation1_spec(
    *,
    m_values: Sequence[int] = (5, 20, 100),
    k_values: Sequence[int] = (2, 3, 5, 10),
    n_random: int = 5,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``observation1`` experiment (one task per family/M)."""
    k_tuple = tuple(int(k) for k in k_values)
    grid: list[dict[str, Any]] = []
    for m in m_values:
        m = check_positive_integer(int(m), "m")
        families = list(default_value_families(m)) + [
            f"random-{index}" for index in range(int(n_random))
        ]
        for family in families:
            grid.append({"family": family, "m": m, "k_values": k_tuple})
    return ExperimentSpec(
        name="observation1",
        description="Observation 1: Cover(p*) > (1 - 1/e) * top-k value",
        task=observation1_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "m_values": tuple(int(m) for m in m_values),
            "k_values": k_tuple,
            "n_random": int(n_random),
        },
    )


def observation1_experiment(
    *,
    m_values: Sequence[int] = (5, 20, 100),
    k_values: Sequence[int] = (2, 3, 5, 10),
    n_random: int = 5,
    rng: np.random.Generator | int | None = 0,
) -> list[Observation1Row]:
    """Sweep instances and record the Observation 1 ratio on each.

    Thin client of the experiment runner; returns one row per
    ``(family, M, k)`` combination (random instances are numbered
    ``random-0``, ``random-1``, ...), in deterministic grid order.
    """
    spec = build_observation1_spec(
        m_values=m_values, k_values=k_values, n_random=n_random, seed=coerce_seed(rng)
    )
    return list(run_experiment(spec).rows)
