"""Numerical verification of Observation 1.

Observation 1 states that the optimal symmetric coverage is within a factor
``(1 - 1/e)`` of the full-coordination optimum (the sum of the ``k`` most
valuable sites)::

    Cover(p_star) > (1 - 1/e) * sum_{x <= k} f(x)

The experiment sweeps value-function families and player counts, recording the
achieved ratio ``Cover(p_star) / sum_{x <= k} f(x)`` — always above
``1 - 1/e ~ 0.632`` — and the intermediate uniform-over-top-k bound used in the
paper's one-line proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.coverage import coverage, full_coordination_coverage
from repro.core.optimal_coverage import optimal_coverage
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["Observation1Row", "observation1_experiment", "default_value_families"]


@dataclass(frozen=True)
class Observation1Row:
    """One instance of the Observation 1 experiment."""

    family: str
    m: int
    k: int
    optimal_coverage: float
    top_k_coverage: float
    uniform_top_k_coverage: float
    ratio: float
    bound: float
    holds: bool


def default_value_families(m: int) -> Mapping[str, Callable[[], SiteValues]]:
    """The standard value-function families used across the experiment harness."""
    return {
        "uniform": lambda: SiteValues.uniform(m),
        "linear": lambda: SiteValues.linear(m),
        "geometric": lambda: SiteValues.geometric(m, ratio=0.85),
        "zipf": lambda: SiteValues.zipf(m, exponent=1.0),
        "exponential": lambda: SiteValues.exponential(m, rate=0.2),
    }


def observation1_experiment(
    *,
    m_values: Sequence[int] = (5, 20, 100),
    k_values: Sequence[int] = (2, 3, 5, 10),
    n_random: int = 5,
    rng: np.random.Generator | int | None = 0,
) -> list[Observation1Row]:
    """Sweep instances and record the Observation 1 ratio on each.

    Returns one row per ``(family, M, k)`` combination (random instances are
    numbered ``random-0``, ``random-1``, ...).
    """
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    bound = 1.0 - 1.0 / np.e
    rows: list[Observation1Row] = []
    for m in m_values:
        m = check_positive_integer(m, "m")
        families = dict(default_value_families(m))
        for index in range(n_random):
            families[f"random-{index}"] = (
                lambda gen=generator, mm=m: SiteValues.random(mm, gen)
            )
        for family, make in families.items():
            values = make()
            for k in k_values:
                k = check_positive_integer(k, "k")
                best = optimal_coverage(values, k)
                top_k = full_coordination_coverage(values, k)
                uniform_cover = coverage(values, Strategy.uniform_over_top(values.m, k), k)
                ratio = best / top_k if top_k > 0 else np.inf
                rows.append(
                    Observation1Row(
                        family=family,
                        m=m,
                        k=k,
                        optimal_coverage=float(best),
                        top_k_coverage=float(top_k),
                        uniform_top_k_coverage=float(uniform_cover),
                        ratio=float(ratio),
                        bound=float(bound),
                        holds=bool(best > bound * top_k),
                    )
                )
    return rows
