"""Host-environment introspection: CPU budget and provenance metadata.

Two consumers share these helpers:

* the experiment runner sizes its process pool with :func:`available_cpus`,
  which respects container CPU limits (``sched_getaffinity``) instead of
  counting every core on the machine;
* the benchmark scripts stamp :func:`environment_metadata` into every
  ``BENCH_*.json`` artifact so timing trajectories are comparable across
  machines (a 10x speedup on 2 cores and a 10x speedup on 64 cores are
  different facts), and the serving ``/stats`` endpoint reports the same
  block.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any

import numpy as np

__all__ = ["available_cpus", "environment_metadata"]


def available_cpus() -> int:
    """CPUs actually available to this process (container-limit aware).

    ``os.sched_getaffinity(0)`` reflects cgroup/taskset restrictions on
    Linux; ``os.cpu_count()`` is the fallback where affinity masks do not
    exist (macOS, Windows).  Always at least 1.
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return max(1, len(getter(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return max(1, os.cpu_count() or 1)


def environment_metadata() -> dict[str, Any]:
    """A JSON-ready snapshot of the host environment for artifact provenance."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "available_cpus": available_cpus(),
    }
