"""Coercing user-facing wrapper objects into raw NumPy arrays.

:class:`~repro.core.strategy.Strategy` and
:class:`~repro.core.values.SiteValues` both expose their payload through an
``as_array()`` method; most numerical kernels accept either the wrapper or a
plain array.  The two helpers here centralise that duck-typed unwrapping (it
used to be copy-pasted as private ``_strategy_array`` / ``_values_array``
functions across ``core``, ``dynamics`` and ``simulation``).

Duck typing keeps :mod:`repro.utils` free of imports from :mod:`repro.core`,
preserving the utils layer's "NumPy only, nothing game-specific" rule.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["strategy_array", "values_array"]


def _as_float_array(obj: Any) -> np.ndarray:
    as_array = getattr(obj, "as_array", None)
    if callable(as_array):
        return as_array()
    return np.asarray(obj, dtype=float)


def strategy_array(strategy: Any) -> np.ndarray:
    """Unwrap a :class:`~repro.core.strategy.Strategy` (or pass an array through)."""
    return _as_float_array(strategy)


def values_array(values: Any) -> np.ndarray:
    """Unwrap a :class:`~repro.core.values.SiteValues` (or pass an array through)."""
    return _as_float_array(values)
