"""Coercing user-facing wrapper objects into raw arrays of the active backend.

:class:`~repro.core.strategy.Strategy` and
:class:`~repro.core.values.SiteValues` both expose their payload through an
``as_array()`` method; most numerical kernels accept either the wrapper or a
plain array.  The two helpers here centralise that duck-typed unwrapping (it
used to be copy-pasted as private ``_strategy_array`` / ``_values_array``
functions across ``core``, ``dynamics`` and ``simulation``).

By default the result is a host NumPy array — the scalar layers are
host-side.  Pass ``backend=`` (a name, a resolved
:class:`~repro.backend.Backend`, or the active one via a resolved handle) to
place the unwrapped payload in another Array-API namespace instead; the
batched kernels use this to ingest wrappers directly onto their backend.

Duck typing keeps :mod:`repro.utils` free of imports from :mod:`repro.core`,
preserving the utils layer's "arrays only, nothing game-specific" rule.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend import Backend, asarray_float, ensure_numpy, resolve_backend

__all__ = ["strategy_array", "values_array"]


def _as_float_array(obj: Any, backend: Backend | str | None) -> Any:
    if backend is not None:
        return asarray_float(resolve_backend(backend), obj)
    as_array = getattr(obj, "as_array", None)
    if callable(as_array):
        return as_array()
    if hasattr(obj, "__array_namespace__") and not isinstance(obj, np.ndarray):
        return np.asarray(ensure_numpy(obj), dtype=float)
    return np.asarray(obj, dtype=float)


def strategy_array(strategy: Any, *, backend: Backend | str | None = None) -> Any:
    """Unwrap a :class:`~repro.core.strategy.Strategy` (or pass an array through).

    ``backend=None`` (the default) returns a host NumPy array; otherwise the
    payload is placed in the resolved backend's namespace.
    """
    return _as_float_array(strategy, backend)


def values_array(values: Any, *, backend: Backend | str | None = None) -> Any:
    """Unwrap a :class:`~repro.core.values.SiteValues` (or pass an array through).

    ``backend=None`` (the default) returns a host NumPy array; otherwise the
    payload is placed in the resolved backend's namespace.
    """
    return _as_float_array(values, backend)
