"""Canonical, backend-independent hashing of game instances and requests.

The serving layer's content-addressed cache (:mod:`repro.serving.cache`)
needs one stable key per *mathematical* request: two callers asking for the
equilibrium of the same instance must hit the same cache slot no matter how
they spelled the instance (list / tuple / NumPy array / backend-native
array / :class:`~repro.core.values.SiteValues`), in which order they listed
the site values, or which array backend is active.  The helpers here define
that canonical form:

* site values are routed through :class:`~repro.core.values.SiteValues`, so
  they inherit its validation and non-increasing sort (the paper's
  ``f(x) >= f(x + 1)`` convention) and come out as a plain float tuple;
* player-count grids become sorted tuples of unique ints;
* the key is a SHA-256 digest of an unambiguous byte encoding in which
  floats are rendered with :meth:`float.hex` — exact round-trip, so values
  differing in the last bit get different keys and equal values always get
  the same one.

Nothing here touches the array backend: canonicalisation is host-side
staging work, exactly like :class:`~repro.batch.padding.PaddedValues`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.values import SiteValues

__all__ = [
    "canonical_values",
    "canonical_distribution",
    "canonical_k_grid",
    "canonical_times",
    "canonical_request",
    "content_key",
    "canonical_task_params",
    "cell_key",
]


def canonical_values(values: "SiteValues | Sequence[float] | np.ndarray") -> tuple[float, ...]:
    """The canonical (validated, non-increasing) float tuple of an instance.

    Accepts anything :meth:`PaddedValues.from_instances
    <repro.batch.padding.PaddedValues.from_instances>` accepts for one row,
    plus backend-native arrays (brought to the host first).
    """
    # Imported lazily: ``repro.core.values`` itself imports ``repro.utils``
    # (validation helpers), so a module-level import here would be circular.
    from repro.core.values import SiteValues

    if not isinstance(values, SiteValues):
        if not isinstance(values, np.ndarray) and hasattr(values, "__array_namespace__"):
            from repro.backend import ensure_numpy

            values = ensure_numpy(values)
        values = SiteValues.from_values(np.asarray(values, dtype=float))
    return tuple(float(v) for v in values.as_array())


def canonical_distribution(
    weights: Sequence[float] | np.ndarray,
) -> tuple[float, ...]:
    """Canonical site-visit distribution: normalised, sorted non-increasing.

    The coverage-time endpoint's instances are *probability* vectors, which
    — unlike site values — may legitimately contain zeros (a zero-probability
    site makes full coverage impossible; the exact kernels report ``inf``),
    so they cannot ride through :func:`canonical_values`.  Entries must be
    finite, non-negative, with a positive total; the vector is normalised by
    its sum (IEEE division is correctly rounded, so proportional integer
    spellings like ``[2, 2]`` and ``[1, 1]`` land on identical doubles) and
    sorted non-increasing — coverage times are permutation-invariant in the
    sites, so all orderings of one distribution share a cache key.
    """
    if weights is None:
        raise ValueError("request is missing the visit distribution 'values'")
    if not isinstance(weights, np.ndarray) and hasattr(weights, "__array_namespace__"):
        from repro.backend import ensure_numpy

        weights = ensure_numpy(weights)
    array = np.asarray(weights, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("a visit distribution must be a non-empty 1-D vector")
    if not np.all(np.isfinite(array)):
        raise ValueError("visit-distribution entries must be finite")
    if np.any(array < 0):
        raise ValueError("visit-distribution entries must be non-negative")
    total = float(array.sum())
    if total <= 0:
        raise ValueError("a visit distribution must have positive total mass")
    array = array / total
    return tuple(float(v) for v in np.sort(array)[::-1])


def canonical_times(times: Sequence[int] | np.ndarray | int) -> tuple[int, ...]:
    """Round-count grids as sorted tuples of unique non-negative ints.

    Like :func:`canonical_k_grid` but admitting ``0`` (the coverage-time CDF
    is well defined at zero rounds), for the ``times`` grid of the
    ``/coverage-times`` endpoint.
    """
    ts = np.unique(np.atleast_1d(np.asarray(times)))
    if ts.size == 0:
        raise ValueError("times must contain at least one round count")
    if not np.issubdtype(ts.dtype, np.integer):
        rounded = np.rint(np.asarray(ts, dtype=float)).astype(np.int64)
        if not np.allclose(ts, rounded):
            raise ValueError("times entries must be integers")
        ts = np.unique(rounded)
    if np.any(ts < 0):
        raise ValueError("times entries must be >= 0")
    return tuple(int(t) for t in ts)


def canonical_k_grid(k_grid: Sequence[int] | np.ndarray | int) -> tuple[int, ...]:
    """Player-count grids as sorted tuples of unique positive ints.

    The serving sweep endpoint treats the grid as a *set* of player counts
    (responses are reported per ``k``), so ``[3, 2, 3]`` and ``(2, 3)`` are
    the same request and must share a cache key.
    """
    ks = np.unique(np.atleast_1d(np.asarray(k_grid)))
    if ks.size == 0:
        raise ValueError("k_grid must contain at least one player count")
    if not np.issubdtype(ks.dtype, np.integer):
        rounded = np.rint(np.asarray(ks, dtype=float)).astype(np.int64)
        if not np.allclose(ks, rounded):
            raise ValueError("k_grid entries must be integers")
        ks = np.unique(rounded)
    if np.any(ks < 1):
        raise ValueError("k_grid entries must be >= 1")
    return tuple(int(k) for k in ks)


def canonical_request(
    kind: str, values: SiteValues | Sequence[float] | np.ndarray, **params: Any
) -> tuple:
    """The canonical nested-tuple form of one serving request.

    ``params`` are sorted by name; every value must be an int, float, bool,
    string, or a (possibly nested) sequence of those.  The result is
    hashable and equality-comparable, and :func:`content_key` digests it.
    """
    items = tuple(
        (name, _canonical_param(params[name])) for name in sorted(params)
    )
    return (str(kind), canonical_values(values), items)


def _canonical_param(value: Any) -> Any:
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, np.ndarray):
        value = value.tolist()
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_param(item) for item in value)
    raise TypeError(f"cannot canonicalise request parameter of type {type(value).__name__}")


def _encode(value: Any, out: list[str]) -> None:
    """Render a canonical tuple unambiguously (type-tagged, length-prefixed)."""
    if isinstance(value, bool):
        out.append(f"b{int(value)}")
    elif isinstance(value, int):
        out.append(f"i{value}")
    elif isinstance(value, float):
        # float.hex round-trips exactly; no repr-precision ambiguity.
        out.append(f"f{value.hex()}")
    elif isinstance(value, str):
        out.append(f"s{len(value)}:{value}")
    elif isinstance(value, tuple):
        out.append(f"t{len(value)}(")
        for item in value:
            _encode(item, out)
        out.append(")")
    else:  # pragma: no cover - _canonical_param already rejects these
        raise TypeError(f"cannot encode {type(value).__name__}")


def content_key(
    kind: str, values: SiteValues | Sequence[float] | np.ndarray, **params: Any
) -> str:
    """SHA-256 hex key of a request's canonical form.

    >>> content_key("solve", [0.3, 1.0], k=3) == content_key(
    ...     "solve", np.array([1.0, 0.3]), k=3
    ... )
    True
    """
    out: list[str] = []
    _encode(canonical_request(kind, values, **params), out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Experiment-cell content addresses (the incremental sweep store)
# ---------------------------------------------------------------------------


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _pickle_digest(value: Any) -> str:
    """Last-resort canonical form: SHA-256 of the pickle byte stream.

    Used only for values the structural canonicaliser cannot decompose (e.g.
    closures wrapped in ``CallablePolicy``).  Pickle bytes are deterministic
    for equal objects built the same way, which is exactly the store's
    use case — the same spec builder producing the same grid twice.
    """
    try:
        return hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()
    except Exception as error:  # pragma: no cover - exercised via TypeError path
        raise TypeError(
            f"cannot canonicalise task parameter of type {type(value).__name__}: {error}"
        ) from error


def _canonical_cell_value(value: Any) -> Any:
    """Canonical nested-tuple form of one task-grid parameter value.

    Handles everything the built-in spec builders put in their grids —
    scalars, strings, (nested) tuples of those, mappings, NumPy arrays,
    dataclasses, :class:`~repro.core.values.SiteValues`-likes and plain
    parameter objects such as congestion policies (type identity + instance
    state) — and falls back to a pickle digest for anything else.
    """
    if value is None:
        return ("none",)
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, np.ndarray):
        # Same canonical form as a sequence: an array-valued parameter and
        # its list/tuple spelling describe the same grid cell.
        value = value.tolist()
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_cell_value(item) for item in value)
    if isinstance(value, Mapping):
        return (
            "map",
            tuple(
                (str(key), _canonical_cell_value(value[key]))
                for key in sorted(value, key=str)
            ),
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            "dataclass",
            _qualname(type(value)),
            tuple(
                (field.name, _canonical_cell_value(getattr(value, field.name)))
                for field in dataclasses.fields(value)
            ),
        )
    if hasattr(value, "as_array"):  # SiteValues / Strategy
        return (
            "values",
            _qualname(type(value)),
            tuple(float(x) for x in value.as_array()),
        )
    state = getattr(value, "__dict__", None)
    if state is not None:
        try:
            fields = tuple(
                (str(key), _canonical_cell_value(state[key])) for key in sorted(state)
            )
        except TypeError:
            return ("pickle", _qualname(type(value)), _pickle_digest(value))
        # Class-level attributes (e.g. a policy's ``name``) are part of the
        # type identity already captured by the qualified name.
        return ("object", _qualname(type(value)), fields)
    return ("pickle", _qualname(type(value)), _pickle_digest(value))


def canonical_task_params(params: Mapping[str, Any]) -> tuple:
    """The canonical nested-tuple form of one experiment task's parameters.

    Sorted by parameter name, with every value routed through the structural
    canonicaliser, so two spec builds producing mathematically identical grid
    cells share a canonical form (and therefore a :func:`cell_key`) no matter
    how the values were spelled.
    """
    return (
        "params",
        tuple((str(name), _canonical_cell_value(params[name])) for name in sorted(params)),
    )


def cell_key(
    family: str, params: Mapping[str, Any], seed: int, index: int, *, task: str = ""
) -> str:
    """Content address of one experiment grid cell.

    The key digests everything the cell's output depends on under the
    library's seed policy: the experiment *family* (spec name), the task
    function's qualified name, the canonicalised task ``params``, the spec's
    base ``seed`` and the cell's grid ``index`` (per-task generators are
    spawned by grid index).  Backend and device are deliberately excluded —
    the batch layer's elementwise contract makes results backend-independent.

    >>> cell_key("sweep", {"k": 3}, 0, 1) == cell_key("sweep", {"k": 3}, 0, 1)
    True
    >>> cell_key("sweep", {"k": 3}, 0, 1) != cell_key("sweep", {"k": 3}, 0, 2)
    True
    """
    out: list[str] = []
    _encode(
        (
            "cell",
            str(family),
            str(task),
            int(seed),
            int(index),
            canonical_task_params(params),
        ),
        out,
    )
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
