"""Canonical, backend-independent hashing of game instances and requests.

The serving layer's content-addressed cache (:mod:`repro.serving.cache`)
needs one stable key per *mathematical* request: two callers asking for the
equilibrium of the same instance must hit the same cache slot no matter how
they spelled the instance (list / tuple / NumPy array / backend-native
array / :class:`~repro.core.values.SiteValues`), in which order they listed
the site values, or which array backend is active.  The helpers here define
that canonical form:

* site values are routed through :class:`~repro.core.values.SiteValues`, so
  they inherit its validation and non-increasing sort (the paper's
  ``f(x) >= f(x + 1)`` convention) and come out as a plain float tuple;
* player-count grids become sorted tuples of unique ints;
* the key is a SHA-256 digest of an unambiguous byte encoding in which
  floats are rendered with :meth:`float.hex` — exact round-trip, so values
  differing in the last bit get different keys and equal values always get
  the same one.

Nothing here touches the array backend: canonicalisation is host-side
staging work, exactly like :class:`~repro.batch.padding.PaddedValues`.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.values import SiteValues

__all__ = ["canonical_values", "canonical_k_grid", "canonical_request", "content_key"]


def canonical_values(values: "SiteValues | Sequence[float] | np.ndarray") -> tuple[float, ...]:
    """The canonical (validated, non-increasing) float tuple of an instance.

    Accepts anything :meth:`PaddedValues.from_instances
    <repro.batch.padding.PaddedValues.from_instances>` accepts for one row,
    plus backend-native arrays (brought to the host first).
    """
    # Imported lazily: ``repro.core.values`` itself imports ``repro.utils``
    # (validation helpers), so a module-level import here would be circular.
    from repro.core.values import SiteValues

    if not isinstance(values, SiteValues):
        if not isinstance(values, np.ndarray) and hasattr(values, "__array_namespace__"):
            from repro.backend import ensure_numpy

            values = ensure_numpy(values)
        values = SiteValues.from_values(np.asarray(values, dtype=float))
    return tuple(float(v) for v in values.as_array())


def canonical_k_grid(k_grid: Sequence[int] | np.ndarray | int) -> tuple[int, ...]:
    """Player-count grids as sorted tuples of unique positive ints.

    The serving sweep endpoint treats the grid as a *set* of player counts
    (responses are reported per ``k``), so ``[3, 2, 3]`` and ``(2, 3)`` are
    the same request and must share a cache key.
    """
    ks = np.unique(np.atleast_1d(np.asarray(k_grid)))
    if ks.size == 0:
        raise ValueError("k_grid must contain at least one player count")
    if not np.issubdtype(ks.dtype, np.integer):
        rounded = np.rint(np.asarray(ks, dtype=float)).astype(np.int64)
        if not np.allclose(ks, rounded):
            raise ValueError("k_grid entries must be integers")
        ks = np.unique(rounded)
    if np.any(ks < 1):
        raise ValueError("k_grid entries must be >= 1")
    return tuple(int(k) for k in ks)


def canonical_request(
    kind: str, values: SiteValues | Sequence[float] | np.ndarray, **params: Any
) -> tuple:
    """The canonical nested-tuple form of one serving request.

    ``params`` are sorted by name; every value must be an int, float, bool,
    string, or a (possibly nested) sequence of those.  The result is
    hashable and equality-comparable, and :func:`content_key` digests it.
    """
    items = tuple(
        (name, _canonical_param(params[name])) for name in sorted(params)
    )
    return (str(kind), canonical_values(values), items)


def _canonical_param(value: Any) -> Any:
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, np.ndarray):
        value = value.tolist()
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_param(item) for item in value)
    raise TypeError(f"cannot canonicalise request parameter of type {type(value).__name__}")


def _encode(value: Any, out: list[str]) -> None:
    """Render a canonical tuple unambiguously (type-tagged, length-prefixed)."""
    if isinstance(value, bool):
        out.append(f"b{int(value)}")
    elif isinstance(value, int):
        out.append(f"i{value}")
    elif isinstance(value, float):
        # float.hex round-trips exactly; no repr-precision ambiguity.
        out.append(f"f{value.hex()}")
    elif isinstance(value, str):
        out.append(f"s{len(value)}:{value}")
    elif isinstance(value, tuple):
        out.append(f"t{len(value)}(")
        for item in value:
            _encode(item, out)
        out.append(")")
    else:  # pragma: no cover - _canonical_param already rejects these
        raise TypeError(f"cannot encode {type(value).__name__}")


def content_key(
    kind: str, values: SiteValues | Sequence[float] | np.ndarray, **params: Any
) -> str:
    """SHA-256 hex key of a request's canonical form.

    >>> content_key("solve", [0.3, 1.0], k=3) == content_key(
    ...     "solve", np.array([1.0, 0.3]), k=3
    ... )
    True
    """
    out: list[str] = []
    _encode(canonical_request(kind, values, **params), out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
