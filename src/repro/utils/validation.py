"""Argument validation helpers.

Every public entry point of the library validates its inputs through these
functions so that error messages are consistent and informative.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_integer",
    "check_positive_integer",
    "check_probability",
    "check_probability_vector",
    "check_value_vector",
    "check_in_range",
]

#: Tolerance used when checking that probability vectors sum to one.
PROB_SUM_ATOL = 1e-8


def check_integer(value: Any, name: str, minimum: int | None = None) -> int:
    """Coerce ``value`` to ``int`` and optionally enforce a minimum."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, (np.integer, int)):
        out = int(value)
    elif isinstance(value, float) and float(value).is_integer():
        out = int(value)
    else:
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and out < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {out}")
    return out


def check_positive_integer(value: Any, name: str) -> int:
    """Coerce ``value`` to a strictly positive ``int``."""
    return check_integer(value, name, minimum=1)


def check_probability(value: Any, name: str) -> float:
    """Validate a scalar probability in ``[0, 1]``."""
    out = float(value)
    if not np.isfinite(out):
        raise ValueError(f"{name} must be finite, got {out}")
    if out < 0.0 or out > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {out}")
    return out


def check_in_range(
    value: Any, name: str, lo: float = -np.inf, hi: float = np.inf
) -> float:
    """Validate a finite scalar constrained to ``[lo, hi]``."""
    out = float(value)
    if not np.isfinite(out):
        raise ValueError(f"{name} must be finite, got {out}")
    if out < lo or out > hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {out}")
    return out


def check_probability_vector(
    values: Sequence[float] | np.ndarray,
    name: str = "probabilities",
    *,
    atol: float = PROB_SUM_ATOL,
    normalize: bool = False,
) -> np.ndarray:
    """Validate (and optionally renormalise) a probability vector.

    Parameters
    ----------
    values:
        Candidate distribution.
    name:
        Name used in error messages.
    atol:
        Allowed deviation of the sum from 1.
    normalize:
        When ``True`` the vector is rescaled to sum exactly to one after the
        non-negativity check (useful for numerically-obtained distributions).
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D array, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite entries")
    if np.any(arr < -atol):
        raise ValueError(f"{name} must be non-negative")
    arr = np.clip(arr, 0.0, None)
    total = arr.sum()
    if normalize:
        if total <= 0:
            raise ValueError(f"{name} must have positive mass")
        return arr / total
    if not np.isclose(total, 1.0, atol=atol, rtol=0.0):
        raise ValueError(f"{name} must sum to 1 (sum={total!r})")
    return arr


def check_value_vector(
    values: Sequence[float] | np.ndarray,
    name: str = "values",
    *,
    require_positive: bool = True,
    require_sorted: bool = False,
) -> np.ndarray:
    """Validate a vector of site values ``f``.

    Parameters
    ----------
    values:
        Candidate site values.
    require_positive:
        When ``True`` all values must be strictly positive (the paper assumes
        ``f : [M] -> R+``).
    require_sorted:
        When ``True`` the vector must already be non-increasing.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D array, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite entries")
    if require_positive and np.any(arr <= 0):
        raise ValueError(f"{name} must be strictly positive")
    if not require_positive and np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    if require_sorted and np.any(np.diff(arr) > 1e-12):
        raise ValueError(f"{name} must be non-increasing")
    return arr.copy()
