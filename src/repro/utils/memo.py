"""Cross-call memoization of staged kernel constants.

The hot batch kernels re-derive the same host-side combinatorics on every
call: :func:`~repro.utils.numerics.binomial_pmf_tensor` rebuilds binomial
coefficients, exponent tables and ``0 ** 0`` guard masks from scratch for
each ``(trial counts, batch size)`` pair, even though the IFD solver alone
evaluates the identical tables a few thousand times per solve (once per
bisection step) and a serving process answers millions of requests over a
handful of distinct ``(k, B)`` shapes.  :class:`PlanMemo` is the bounded,
backend/device-keyed LRU that carries those
:class:`~repro.utils.numerics.BinomialPmfPlan` objects *across* calls:

* keys pin everything the staged tensors depend on — backend name, device,
  float dtype, batch size and the per-row trial counts (constant rosters
  collapse to a scalar key, ragged rosters hash their bytes) — so a hit is
  exactly the plan a fresh :func:`~repro.utils.numerics.make_binomial_pmf_plan`
  call would have built;
* the plan path of ``binomial_pmf_tensor`` evaluates the same expressions in
  the same order as the plan-free path, so memoization is **bit-transparent**:
  kernel outputs are elementwise identical with the memo on or off
  (``tests/test_utils_numerics.py`` asserts this, and the serving layer's
  bit-identity contract relies on it);
* hit/miss/eviction counters are exposed via :meth:`PlanMemo.stats` for the
  serving ``/stats`` endpoint and ``BENCH_serving.json``.

A :class:`threading.Lock` guards the LRU (thread-pool executors solve groups
concurrently); process-pool workers each hold their own memo, warmed on
first use.  The module-level :data:`plan_memo` is the shared instance the
batch kernels consult through :func:`cached_binomial_pmf_plan`; tests can
suspend it with :meth:`PlanMemo.disabled`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.numerics import BinomialPmfPlan

__all__ = ["PlanMemo", "plan_memo", "cached_binomial_pmf_plan"]


def _plan_key(backend: Any, trials: np.ndarray) -> tuple:
    """Everything a cached plan's device tensors depend on, as a dict key.

    A constant roster (the common case: one scalar ``k`` broadcast over the
    batch) keys on ``(value, size)`` instead of the full byte string, so the
    memo stays tiny under homogeneous-``k`` serving traffic.
    """
    if trials.size and int(trials.min()) == int(trials.max()):
        shape: tuple = ("const", int(trials[0]), trials.size)
    else:
        shape = ("roster", trials.size, trials.tobytes())
    return (backend.name, str(backend.device), str(backend.float_dtype), shape)


class PlanMemo:
    """Bounded LRU of :class:`~repro.utils.numerics.BinomialPmfPlan` objects.

    Parameters
    ----------
    max_entries:
        Capacity bound; the least recently used plan is evicted beyond it.
        Each entry holds ``O(B * n_max)`` floats, so the default keeps the
        memo a few megabytes even for large batches.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, BinomialPmfPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0

    # ------------------------------------------------------------------ lookup
    def get(
        self,
        n: np.ndarray | int,
        *,
        batch_size: int | None = None,
        backend: Any = None,
    ) -> "BinomialPmfPlan":
        """The memoized plan for trial counts ``n``, built on first use.

        Arguments mirror :func:`~repro.utils.numerics.make_binomial_pmf_plan`
        exactly; a miss delegates to it and caches the result.  With the memo
        disabled every call builds a fresh plan (counted as a bypass), which
        is how the on-vs-off identity tests exercise both paths.
        """
        from repro.backend import resolve_backend
        from repro.utils.numerics import make_binomial_pmf_plan

        be = resolve_backend(backend)
        trials = np.asarray(n, dtype=np.int64)
        if trials.ndim == 0:
            if batch_size is None:
                raise ValueError("a scalar n requires batch_size")
            trials = np.broadcast_to(trials, (int(batch_size),))
        if not self.enabled:
            with self._lock:
                self.bypasses += 1
            return make_binomial_pmf_plan(trials, backend=be)
        key = _plan_key(be, trials)
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return plan
            self.misses += 1
        # Build outside the lock: plan staging may upload device tensors.
        plan = make_binomial_pmf_plan(trials, backend=be)
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return plan

    # --------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        """Drop every cached plan (counters keep describing the lifetime)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction/bypass counters (benchmark phases)."""
        with self._lock:
            self.hits = self.misses = self.evictions = self.bypasses = 0

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily bypass the memo (every call builds a fresh plan)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------- stats
    def stats(self) -> dict[str, Any]:
        """Counters for ``/stats`` and the serving benchmark artifact."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


#: The process-wide memo the batch kernels consult.  Thread-safe; process-pool
#: workers warm their own copy.
plan_memo = PlanMemo()


def cached_binomial_pmf_plan(
    n: np.ndarray | int, *, batch_size: int | None = None, backend: Any = None
) -> "BinomialPmfPlan":
    """The shared-memo counterpart of :func:`~repro.utils.numerics.make_binomial_pmf_plan`.

    Hot paths (the IFD bisections, payoff/scenario kernels, the serving
    engine) call this instead of rebuilding the plan; outputs are elementwise
    identical either way — see :mod:`repro.utils.memo`.
    """
    return plan_memo.get(n, batch_size=batch_size, backend=backend)
