"""Plain-text table formatting for experiment reports.

The offline environment has no plotting backend, so experiment harnesses in
:mod:`repro.analysis` print aligned text tables (and ASCII plots) instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: float, precision: int = 6) -> str:
    """Format a float compactly (fixed precision, trimmed trailing zeros)."""
    if value != value:  # NaN
        return "nan"
    text = f"{value:.{precision}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text if text else "0"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 6,
    align_right: bool = True,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned, pipe-separated text table.

    Floats are formatted with :func:`format_float`; everything else with
    ``str``.  The output is stable (no locale dependence) so it can be used in
    golden-file style assertions.
    """
    header_cells = [str(h) for h in headers]
    body: list[list[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, bool):
                cells.append(str(cell))
            elif isinstance(cell, float):
                cells.append(format_float(cell, precision))
            else:
                cells.append(str(cell))
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = []
        for cell, width in zip(cells, widths):
            padded.append(cell.rjust(width) if align_right else cell.ljust(width))
        return " | ".join(padded)

    lines = [render_row(header_cells)]
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(cells) for cells in body)
    return "\n".join(lines)
