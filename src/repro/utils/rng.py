"""One home for random-number plumbing: generators, spawning, seed policy.

Every stochastic entry point of the library funnels its randomness through
this module (it absorbed the old ``repro.simulation.rng`` helpers and the
``SeedSequence``-spawning logic that lived in the experiment runner), so the
seed-derivation policy is written down exactly once:

**Seed-derivation policy.**

1. A *root seed* (one integer, the ``--seed`` flag / ``ExperimentSpec.seed``)
   identifies a whole experiment.  ``numpy.random.SeedSequence(root)`` is its
   entropy source.
2. One child ``SeedSequence`` is spawned **per task / instance** with
   :func:`spawn_seed_sequences`.  NumPy keys each child by its spawn index
   alone, so child ``i`` is the same stream whether 3 or 300 children are
   spawned — task randomness depends only on ``(root seed, grid index)``,
   never on scheduling, worker count or how the grid was chunked.
3. Within a task, draws are consumed **sequentially** from the task's
   generator.  Batched Monte-Carlo kernels that split a big draw into memory
   chunks (``max_chunk_draws``) lay the draw out trial-major — uniform blocks
   of shape ``(n_chunk_trials, B, k)`` — so concatenating chunk draws along
   the trial axis reproduces the unchunked stream bit for bit; the sampled
   outcomes do not depend on the chunk size (accumulated floating-point
   statistics agree to summation rounding).

Nothing here imports the rest of the library, so ``core``, ``simulation``,
``batch`` and ``experiments`` all route through one implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators", "spawn_seed_sequences"]


def as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed / generator / ``None`` into a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seed_sequences(
    seed: int | np.random.SeedSequence, n: int
) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child ``SeedSequence`` objects from a root seed.

    Child ``i`` depends only on ``(seed, i)`` — NumPy's spawning mechanism
    keys children by their spawn index — so the children are stable under
    re-chunking: asking for 4 children and later for 40 yields the same first
    four streams.  A ``SeedSequence`` root is re-rooted on its
    ``(entropy, spawn_key)`` identity rather than spawned in place, so the
    guarantee holds across repeated calls too (NumPy's own ``spawn`` would
    continue from the object's mutable spawn counter).  The experiment
    runner derives its per-task generators this way, and re-running a subset
    of a grid reproduces exactly the rows the full run produced.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if n == 0:
        return []
    if isinstance(seed, np.random.SeedSequence):
        root = np.random.SeedSequence(entropy=seed.entropy, spawn_key=seed.spawn_key)
    else:
        root = np.random.SeedSequence(int(seed))
    return root.spawn(n)


def spawn_generators(
    n: int, rng: np.random.Generator | int | None = None
) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Parameters
    ----------
    n:
        Number of child generators (``>= 1``).
    rng:
        Base seed or generator.  When a generator is supplied its bit
        generator's seed sequence is spawned, so children are independent of
        each other *and* of the parent stream.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if isinstance(rng, np.random.Generator):
        seed_seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        children = seed_seq.spawn(n)
    elif rng is None:
        # Fresh OS entropy, matching ``default_rng(None)``.
        children = np.random.SeedSequence().spawn(n)
    else:
        children = spawn_seed_sequences(int(rng), n)
    return [np.random.default_rng(child) for child in children]
