"""Numerical helper routines used throughout the library.

The functions here follow the vectorisation guidance of the scientific-Python
performance guides: array-level operations, broadcasting instead of Python
loops, and in-place updates where it matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "assert_shape",
    "BinomialPmfPlan",
    "binomial_pmf_matrix",
    "binomial_pmf_tensor",
    "clip_probability",
    "is_non_increasing",
    "make_binomial_pmf_plan",
    "safe_power",
    "simplex_projection",
    "monotone_bisection",
    "vectorized_bisection",
    "log_factorial",
    "binomial_coefficients",
]

#: Default absolute tolerance used by verification helpers across the library.
DEFAULT_ATOL = 1e-9


def assert_shape(array: np.ndarray, shape: tuple[int, ...], name: str = "array") -> None:
    """Raise ``ValueError`` if ``array`` does not have exactly ``shape``.

    Parameters
    ----------
    array:
        Array to check.
    shape:
        Expected shape.  Use ``-1`` for a dimension whose size is not checked.
    name:
        Name used in the error message.
    """
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected != -1 and actual != expected:
            raise ValueError(
                f"{name} has size {actual} along axis {axis}, expected {expected}"
            )


def clip_probability(p: np.ndarray | float, eps: float = 0.0) -> np.ndarray | float:
    """Clip probabilities into ``[eps, 1 - eps]`` (and always into ``[0, 1]``).

    Useful before taking logarithms or powers of ``1 - p``.
    """
    lo = max(0.0, eps)
    hi = min(1.0, 1.0 - eps) if eps > 0 else 1.0
    return np.clip(p, lo, hi)


def is_non_increasing(values: Sequence[float] | np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` when ``values`` is non-increasing up to tolerance ``atol``."""
    arr = np.asarray(values, dtype=float)
    if arr.size <= 1:
        return True
    return bool(np.all(np.diff(arr) <= atol))


def safe_power(base: np.ndarray | float, exponent: float) -> np.ndarray:
    """Compute ``base ** exponent`` for non-negative ``base`` without warnings.

    ``0 ** negative`` is mapped to ``+inf`` and ``0 ** 0`` to ``1`` which is the
    convention the closed-form IFD formulas rely on (a zero-valued site is
    never part of the support).
    """
    arr = np.atleast_1d(np.asarray(base, dtype=float))
    if np.any(arr < 0):
        raise ValueError("safe_power expects non-negative bases")
    out = np.empty_like(arr)
    positive = arr > 0
    out[positive] = np.power(arr[positive], exponent)
    if exponent < 0:
        out[~positive] = np.inf
    elif exponent == 0:
        out[~positive] = 1.0
    else:
        out[~positive] = 0.0
    if np.isscalar(base) or np.asarray(base).ndim == 0:
        return out.reshape(())
    return out


def log_factorial(n: int) -> np.ndarray:
    """Return an array ``lf`` with ``lf[i] = log(i!)`` for ``i = 0 .. n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    out = np.zeros(n + 1, dtype=float)
    if n >= 1:
        out[1:] = np.cumsum(np.log(np.arange(1, n + 1, dtype=float)))
    return out


def binomial_coefficients(n: int) -> np.ndarray:
    """Return the row ``[C(n, 0), ..., C(n, n)]`` of Pascal's triangle as floats."""
    if n < 0:
        raise ValueError("n must be non-negative")
    lf = log_factorial(n)
    j = np.arange(n + 1)
    return np.exp(lf[n] - lf[j] - lf[n - j])


def binomial_pmf_matrix(n: int, probs: np.ndarray) -> np.ndarray:
    """Binomial probability mass functions for many success probabilities at once.

    Parameters
    ----------
    n:
        Number of trials (``n >= 0``).
    probs:
        1-D array of success probabilities, one per "site".

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(probs), n + 1)``; entry ``[i, j]`` is
        ``P[Binomial(n, probs[i]) = j]``.

    Notes
    -----
    Computed with a stable direct product formula (no ``scipy`` dependency in
    the hot path) and fully vectorised over sites.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    p = np.asarray(probs, dtype=float)
    if p.ndim != 1:
        raise ValueError("probs must be a 1-D array")
    if np.any((p < -1e-12) | (p > 1 + 1e-12)):
        raise ValueError("probs must lie in [0, 1]")
    p = np.clip(p, 0.0, 1.0)
    if n == 0:
        return np.ones((p.size, 1), dtype=float)

    j = np.arange(n + 1)
    coeffs = binomial_coefficients(n)
    # Guard the 0 ** 0 corner with explicit where= masks.
    with np.errstate(divide="ignore", invalid="ignore"):
        p_col = p[:, None]
        pow_p = np.where(j[None, :] == 0, 1.0, p_col ** j[None, :])
        pow_q = np.where((n - j)[None, :] == 0, 1.0, (1.0 - p_col) ** (n - j)[None, :])
    pmf = coeffs[None, :] * pow_p * pow_q
    # Clean up tiny negative round-off and renormalise rows.
    pmf = np.clip(pmf, 0.0, None)
    row_sums = pmf.sum(axis=1, keepdims=True)
    # A row sum can only deviate from 1 by floating error; avoid division by 0.
    row_sums[row_sums == 0.0] = 1.0
    return pmf / row_sums


@dataclass(frozen=True)
class BinomialPmfPlan:
    """Precomputed constants for repeated :func:`binomial_pmf_tensor` calls.

    A plan freezes everything that depends only on the per-row trial counts
    and the backend — the binomial coefficients, the exponent tables and the
    ``0 ** 0`` guard masks — as device-resident tensors, staged **once** under
    an expected-transfer boundary.  Hot loops (dynamics stepping) then call
    ``binomial_pmf_tensor(..., plan=plan)`` with zero per-call host
    transfers and zero host synchronisations, which also keeps the body
    traceable by graph compilers.
    """

    backend: Any
    trials: np.ndarray
    """Host ``(B,)`` trial counts the plan was built for."""
    n_max: int
    one: Any
    """Device scalar ``1.0``."""
    j_zero: Any
    """Device ``(1, 1, J)`` bool mask: ``j == 0``."""
    rest_zero: Any
    """Device ``(B, 1, J)`` bool mask: ``n_b - j == 0``."""
    jf: Any
    """Device ``(1, 1, J)`` float exponents ``j``."""
    restf: Any
    """Device ``(B, 1, J)`` float exponents ``n_b - j`` (clipped at 0)."""
    coeffs: Any
    """Device ``(B, 1, J)`` binomial coefficients, zero where ``j > n_b``."""


def make_binomial_pmf_plan(
    n: np.ndarray | int, *, batch_size: int | None = None, backend=None
) -> BinomialPmfPlan:
    """Build a :class:`BinomialPmfPlan` for trial counts ``n``.

    ``n`` is a scalar or ``(B,)`` vector exactly as accepted by
    :func:`binomial_pmf_tensor`; a scalar requires ``batch_size`` to fix the
    row count.  All combinatorics run on the host (they are staging work) and
    the resulting tables are uploaded in a single expected-transfer block.
    """
    from repro.backend import expected_transfer, from_numpy, resolve_backend

    be = resolve_backend(backend)
    trials = np.asarray(n, dtype=np.int64)
    if trials.ndim == 0:
        if batch_size is None:
            raise ValueError("a scalar n requires batch_size")
        trials = np.broadcast_to(trials, (int(batch_size),))
    trials = np.ascontiguousarray(trials)
    if trials.ndim != 1:
        raise ValueError("n must be a scalar or a (B,) vector")
    if np.any(trials < 0):
        raise ValueError("n must be non-negative")
    n_max = int(trials.max(initial=0))

    j = np.arange(n_max + 1, dtype=np.int64)
    rest = np.clip(trials[:, None] - j[None, :], 0, None)
    valid = j[None, :] <= trials[:, None]
    lf = log_factorial(n_max)
    log_coeffs = lf[trials][:, None] - lf[j][None, :] - lf[rest]
    coeffs = np.where(valid, np.exp(log_coeffs), 0.0)

    fdt = be.float_dtype
    with expected_transfer():
        return BinomialPmfPlan(
            backend=be,
            trials=trials,
            n_max=n_max,
            one=from_numpy(be, np.asarray(1.0), dtype=fdt),
            j_zero=from_numpy(be, (j == 0)[None, None, :], dtype=be.bool_dtype),
            rest_zero=from_numpy(be, (rest == 0)[:, None, :], dtype=be.bool_dtype),
            jf=from_numpy(be, j.astype(float)[None, None, :], dtype=fdt),
            restf=from_numpy(be, rest.astype(float)[:, None, :], dtype=fdt),
            coeffs=from_numpy(be, coeffs[:, None, :], dtype=fdt),
        )


def binomial_pmf_tensor(
    n: np.ndarray | int,
    probs: np.ndarray,
    *,
    backend=None,
    plan: BinomialPmfPlan | None = None,
) -> np.ndarray:
    """Binomial PMFs for a *batch* of probability rows with per-row trial counts.

    Parameters
    ----------
    n:
        Number of trials per row: a scalar or a ``(B,)`` integer vector, every
        entry ``>= 0`` (host-side; per-row counts steer control flow).
    probs:
        ``(B, M)`` matrix of success probabilities (host array or an array
        native to the active backend).
    backend:
        Backend handle or name; ``None`` uses the active backend (see
        :mod:`repro.backend`).
    plan:
        Optional :class:`BinomialPmfPlan` built by
        :func:`make_binomial_pmf_plan` for the same ``n`` and backend.  With
        a plan the call performs no host transfers and no host
        synchronisations: the trial-count validation and the range check on
        ``probs`` are skipped (the caller vouches for both) and every
        constant comes from the plan's device tensors.

    Returns
    -------
    numpy.ndarray
        Tensor of shape ``(B, M, n_max + 1)``; entry ``[b, x, j]`` is
        ``P[Binomial(n[b], probs[b, x]) = j]`` for ``j <= n[b]`` and exactly
        zero beyond (rows with a smaller trial count are zero-padded, so the
        trailing axis can be contracted against any padded table).  Returned
        in the backend's namespace when ``probs`` was backend-native, as a
        host NumPy array otherwise.

    Notes
    -----
    This is the batch counterpart of :func:`binomial_pmf_matrix`: one
    log-factorial table is shared by every row, rows are never looped over in
    Python, and the body is pure Array-API code.
    """
    from repro.backend import (
        asarray_float,
        errstate_ignore,
        from_numpy,
        is_native,
        resolve_backend,
        to_numpy,
    )

    be = resolve_backend(backend) if plan is None else plan.backend
    xp = be.xp
    fdt = be.float_dtype
    native = is_native(be, probs)
    P = asarray_float(be, probs)
    if P.ndim != 2:
        raise ValueError("probs must be a 2-D (B, M) matrix")

    if plan is not None:
        P = xp.clip(P, 0.0, 1.0)
        if plan.n_max == 0:
            out = xp.ones((P.shape[0], P.shape[1], 1), dtype=fdt)
            return out if native else to_numpy(out)
        with errstate_ignore(be):
            p_col = P[:, :, None]  # (B, M, 1)
            pow_p = xp.where(plan.j_zero, plan.one, p_col**plan.jf)
            pow_q = xp.where(plan.rest_zero, plan.one, (1.0 - p_col) ** plan.restf)
        pmf = plan.coeffs * pow_p * pow_q
        pmf = xp.clip(pmf, 0.0, None)
        row_sums = xp.sum(pmf, axis=2, keepdims=True)
        row_sums = xp.where(row_sums > 0, row_sums, xp.ones_like(row_sums))
        pmf = pmf / row_sums
        return pmf if native else to_numpy(pmf)

    trials = np.broadcast_to(
        np.asarray(n if not hasattr(n, "__array_namespace__") else to_numpy(n), dtype=np.int64),
        (P.shape[0],),
    )
    if np.any(trials < 0):
        raise ValueError("n must be non-negative")
    if bool(xp.any((P < -1e-12) | (P > 1 + 1e-12))):
        raise ValueError("probs must lie in [0, 1]")
    P = xp.clip(P, 0.0, 1.0)
    n_max = int(trials.max(initial=0))
    if n_max == 0:
        out = xp.ones((P.shape[0], P.shape[1], 1), dtype=fdt)
        return out if native else to_numpy(out)

    one = xp.asarray(1.0, dtype=fdt)
    zero = xp.asarray(0.0, dtype=fdt)
    trials_dev = from_numpy(be, trials, dtype=be.int_dtype)
    j = xp.arange(n_max + 1, dtype=be.int_dtype)  # (J,)
    valid = j[None, :] <= trials_dev[:, None]  # (B, J)
    # log C(n_b, j) via one shared log-factorial table; invalid cells clamped
    # to a harmless index and masked out afterwards.
    lf = from_numpy(be, log_factorial(n_max), dtype=fdt)
    rest = xp.clip(trials_dev[:, None] - j[None, :], 0, None)  # (B, J)
    log_coeffs = (
        xp.take(lf, trials_dev)[:, None]
        - xp.take(lf, j)[None, :]
        - xp.reshape(xp.take(lf, xp.reshape(rest, (-1,))), rest.shape)
    )
    coeffs = xp.where(valid, xp.exp(log_coeffs), zero)  # (B, J)

    # Guard the 0 ** 0 corners exactly as binomial_pmf_matrix does.
    jf = xp.astype(j, fdt)
    restf = xp.astype(rest, fdt)
    with errstate_ignore(be):
        p_col = P[:, :, None]  # (B, M, 1)
        pow_p = xp.where(j[None, None, :] == 0, one, p_col ** jf[None, None, :])
        pow_q = xp.where(
            rest[:, None, :] == 0, one, (1.0 - p_col) ** restf[:, None, :]
        )
    pmf = coeffs[:, None, :] * pow_p * pow_q
    pmf = xp.clip(pmf, 0.0, None)
    row_sums = xp.sum(pmf, axis=2, keepdims=True)
    row_sums = xp.where(row_sums > 0, row_sums, xp.ones_like(row_sums))
    pmf = pmf / row_sums
    return pmf if native else to_numpy(pmf)


def simplex_projection(v: np.ndarray) -> np.ndarray:
    """Project ``v`` onto the probability simplex (Euclidean projection).

    Implements the sort-based algorithm of Held, Wolfe & Crowder (1974) /
    Duchi et al. (2008).  Runs in ``O(M log M)``.
    """
    vec = np.asarray(v, dtype=float).ravel()
    if vec.size == 0:
        raise ValueError("cannot project an empty vector")
    u = np.sort(vec)[::-1]
    css = np.cumsum(u)
    idx = np.arange(1, vec.size + 1)
    cond = u - (css - 1.0) / idx > 0
    if not np.any(cond):
        # Degenerate numerical case: fall back to uniform.
        return np.full_like(vec, 1.0 / vec.size)
    rho = np.nonzero(cond)[0][-1]
    theta = (css[rho] - 1.0) / (rho + 1.0)
    out = np.maximum(vec - theta, 0.0)
    total = out.sum()
    if total <= 0:
        return np.full_like(vec, 1.0 / vec.size)
    return out / total


def monotone_bisection(
    func,
    lo: float,
    hi: float,
    target: float = 0.0,
    *,
    increasing: bool = True,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find ``x`` in ``[lo, hi]`` with ``func(x) ~= target`` for a monotone ``func``.

    Parameters
    ----------
    func:
        Scalar monotone function.
    lo, hi:
        Bracketing interval; ``func`` is evaluated at both ends and the target
        must lie between them (up to tolerance), otherwise the closest end is
        returned.
    increasing:
        Direction of monotonicity.
    tol:
        Termination tolerance on the interval width.
    max_iter:
        Hard cap on the number of bisection steps.
    """
    if hi < lo:
        raise ValueError("hi must be >= lo")
    f_lo = func(lo) - target
    f_hi = func(hi) - target
    if not increasing:
        f_lo, f_hi = -f_lo, -f_hi
    if f_lo >= 0:
        return lo
    if f_hi <= 0:
        return hi
    a, b = lo, hi
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        f_mid = func(mid) - target
        if not increasing:
            f_mid = -f_mid
        if f_mid >= 0:
            b = mid
        else:
            a = mid
        if b - a <= tol * max(1.0, abs(b)):
            break
    return 0.5 * (a + b)


def vectorized_bisection(
    func,
    lo: np.ndarray,
    hi: np.ndarray,
    *,
    increasing: bool = True,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> np.ndarray:
    """Vectorised bisection for root finding of element-wise monotone functions.

    ``func`` maps an array ``x`` to an array of residuals of the same shape; a
    root is sought independently for every element.  Elements whose bracket
    does not contain a sign change converge to the nearest endpoint.
    """
    a = np.array(lo, dtype=float, copy=True)
    b = np.array(hi, dtype=float, copy=True)
    if a.shape != b.shape:
        raise ValueError("lo and hi must have identical shapes")
    sign = 1.0 if increasing else -1.0
    f_a = sign * np.asarray(func(a), dtype=float)
    f_b = sign * np.asarray(func(b), dtype=float)
    # Clamp degenerate brackets to the closest endpoint.
    done_lo = f_a >= 0
    done_hi = f_b <= 0
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        f_mid = sign * np.asarray(func(mid), dtype=float)
        go_left = f_mid >= 0
        b = np.where(go_left, mid, b)
        a = np.where(go_left, a, mid)
        if np.all(b - a <= tol * np.maximum(1.0, np.abs(b))):
            break
    out = 0.5 * (a + b)
    out = np.where(done_lo, lo, out)
    out = np.where(done_hi & ~done_lo, hi, out)
    return out


def weighted_average(values: Iterable[float], weights: Iterable[float]) -> float:
    """Weighted average with validation; weights must be non-negative and not all zero."""
    v = np.asarray(list(values), dtype=float)
    w = np.asarray(list(weights), dtype=float)
    if v.shape != w.shape:
        raise ValueError("values and weights must have identical shapes")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total == 0:
        raise ValueError("weights must not all be zero")
    return float(np.dot(v, w) / total)
