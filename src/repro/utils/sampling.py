"""Shared batched inverse-CDF sampling of categorical site choices.

``numpy.random.Generator.choice`` re-validates and re-normalises its
probability vector on every call and cannot draw from several distributions
at once.  The helpers here sample by inverting precomputed cumulative
distributions instead:

* :func:`inverse_cdf_sample` — one ``searchsorted`` against a single CDF;
* :func:`stacked_cdfs` / :func:`inverse_cdf_sample_stacked` — one
  ``searchsorted`` against ``k`` *offset* CDFs laid out in a single sorted
  array, so a whole ``(n_trials, k)`` heterogeneous-profile draw costs one
  vectorised pass instead of ``k`` ``generator.choice`` calls.

Everything is NumPy-only (no :mod:`repro.core` imports), so both the core
strategy objects and the simulation engine can route their sampling here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "strategy_cdf",
    "stacked_cdfs",
    "inverse_cdf_sample",
    "inverse_cdf_sample_stacked",
]

#: Gap between consecutive offset CDFs in the stacked layout.  Each CDF lives
#: in [0, 1], so any spacing > 1 keeps the concatenation strictly sorted.
_STACK_SPACING = 2.0


def strategy_cdf(probabilities: np.ndarray) -> np.ndarray:
    """Cumulative distribution of one probability vector (validated lightly)."""
    p = np.asarray(probabilities, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D vector")
    cdf = np.cumsum(p)
    if not np.isclose(cdf[-1], 1.0, atol=1e-6):
        raise ValueError("probabilities must sum to one")
    return cdf


def stacked_cdfs(probability_rows: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
    """Row-wise CDFs of a ``(k, M)`` probability matrix (for the stacked sampler)."""
    matrix = np.asarray(probability_rows, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValueError("probability_rows must form a non-empty (k, M) matrix")
    cdfs = np.cumsum(matrix, axis=1)
    if not np.allclose(cdfs[:, -1], 1.0, atol=1e-6):
        raise ValueError("every probability row must sum to one")
    return cdfs


def inverse_cdf_sample(
    cdf: np.ndarray,
    shape: int | tuple[int, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw categorical samples of ``shape`` by inverting a single CDF.

    Returns 0-based indices; index ``j`` is drawn with probability
    ``cdf[j] - cdf[j-1]``.
    """
    u = rng.random(shape)
    choices = np.searchsorted(cdf, u, side="right")
    return np.minimum(choices, cdf.size - 1)


def inverse_cdf_sample_stacked(
    cdfs: np.ndarray,
    n_trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw an ``(n_trials, k)`` matrix with column ``i`` following ``cdfs[i]``.

    The ``k`` CDFs are shifted by ``2 * i`` and concatenated into one sorted
    array, so a single ``searchsorted`` inverts all of them at once — the
    whole heterogeneous-profile draw is ``rng.random`` plus one binary-search
    pass, with no per-player Python loop.
    """
    cdfs = np.asarray(cdfs, dtype=float)
    if cdfs.ndim != 2:
        raise ValueError("cdfs must be a (k, M) matrix")
    k, m = cdfs.shape
    offsets = _STACK_SPACING * np.arange(k)
    flat = (cdfs + offsets[:, None]).ravel()
    u = rng.random((n_trials, k)) + offsets[None, :]
    indices = np.searchsorted(flat, u.ravel(), side="right").reshape(n_trials, k)
    choices = indices - (np.arange(k) * m)[None, :]
    return np.minimum(choices, m - 1)
