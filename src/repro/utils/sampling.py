"""Shared batched inverse-CDF sampling of categorical site choices.

``numpy.random.Generator.choice`` re-validates and re-normalises its
probability vector on every call and cannot draw from several distributions
at once.  The helpers here sample by inverting precomputed cumulative
distributions instead:

* :func:`inverse_cdf_sample` — one ``searchsorted`` against a single CDF;
* :func:`stacked_cdfs` / :func:`inverse_cdf_sample_stacked` — one
  ``searchsorted`` against ``k`` *offset* CDFs laid out in a single sorted
  array, so a whole ``(n_trials, k)`` heterogeneous-profile draw costs one
  vectorised pass instead of ``k`` ``generator.choice`` calls.

Randomness always comes from the host ``numpy.random.Generator`` (seed
streams are part of the experiment contract and identical across backends);
the CDF construction and the ``searchsorted`` inversion are Array-API code,
so passing ``backend=`` runs the search on another namespace with the host
draws transferred per batch.  The default (``backend=None`` resolving to
NumPy, or an inactive context) keeps the original pure-NumPy fast path.

Nothing here imports :mod:`repro.core`, so both the core strategy objects and
the simulation engine can route their sampling through one implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import Backend, asarray_float, random_uniform, resolve_backend, to_numpy

__all__ = [
    "STACK_SPACING",
    "strategy_cdf",
    "stacked_cdfs",
    "stacked_flat_cdfs",
    "inverse_cdf_sample",
    "inverse_cdf_sample_stacked",
]

#: Gap between consecutive offset CDFs in the stacked layout.  Each CDF lives
#: in [0, 1], so any spacing > 1 keeps the concatenation strictly sorted.
#: Shared by every stacked sampler (including the batched Monte-Carlo kernels
#: of :mod:`repro.batch.simulation` / :mod:`repro.batch.search`): a uniform
#: draw for row ``r`` is shifted by ``STACK_SPACING * r`` before one
#: ``searchsorted`` against the flat layout inverts all rows at once.
STACK_SPACING = 2.0

_STACK_SPACING = STACK_SPACING


def stacked_flat_cdfs(probability_rows: np.ndarray) -> np.ndarray:
    """Offset row-wise CDFs of an ``(R, M)`` matrix, flattened strictly sorted.

    The host-side builder of the stacked inverse-CDF layout: row ``r``'s CDF
    is shifted by ``STACK_SPACING * r`` and the rows are concatenated, so a
    single ``searchsorted`` of shifted uniforms inverts every row's
    distribution at once.  Rows are used as given (callers validate); the
    result is a plain NumPy vector of length ``R * M``.
    """
    matrix = np.asarray(probability_rows, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("probability_rows must form an (R, M) matrix")
    cdfs = np.cumsum(matrix, axis=1)
    offsets = STACK_SPACING * np.arange(matrix.shape[0])
    return (cdfs + offsets[:, None]).ravel()


def strategy_cdf(
    probabilities: np.ndarray, *, backend: Backend | str | None = None
) -> np.ndarray:
    """Cumulative distribution of one probability vector (validated lightly)."""
    if backend is None:
        p = np.asarray(probabilities, dtype=float)
        if p.ndim != 1 or p.size == 0:
            raise ValueError("probabilities must be a non-empty 1-D vector")
        cdf = np.cumsum(p)
        if not np.isclose(cdf[-1], 1.0, atol=1e-6):
            raise ValueError("probabilities must sum to one")
        return cdf
    be = resolve_backend(backend)
    xp = be.xp
    p = asarray_float(be, probabilities)
    if p.ndim != 1 or p.shape[0] == 0:
        raise ValueError("probabilities must be a non-empty 1-D vector")
    cdf = xp.cumulative_sum(p)
    # Same tolerance as the fast path above, evaluated on the host scalar.
    if not np.isclose(float(cdf[-1]), 1.0, atol=1e-6):
        raise ValueError("probabilities must sum to one")
    return cdf


def stacked_cdfs(
    probability_rows: Sequence[np.ndarray] | np.ndarray,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Row-wise CDFs of a ``(k, M)`` probability matrix (for the stacked sampler)."""
    if backend is None:
        matrix = np.asarray(probability_rows, dtype=float)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ValueError("probability_rows must form a non-empty (k, M) matrix")
        cdfs = np.cumsum(matrix, axis=1)
        if not np.allclose(cdfs[:, -1], 1.0, atol=1e-6):
            raise ValueError("every probability row must sum to one")
        return cdfs
    be = resolve_backend(backend)
    xp = be.xp
    if not (
        isinstance(probability_rows, np.ndarray)
        or hasattr(probability_rows, "__array_namespace__")
    ):
        # Mixed Python sequences are staged on the host once; array inputs
        # (NumPy or backend-native) go straight to asarray_float, so native
        # matrices never take a device round-trip.
        probability_rows = np.asarray([to_numpy(row) for row in probability_rows])
    matrix = asarray_float(be, probability_rows)
    if matrix.ndim != 2 or matrix.shape[0] * matrix.shape[1] == 0:
        raise ValueError("probability_rows must form a non-empty (k, M) matrix")
    cdfs = xp.cumulative_sum(matrix, axis=1)
    # Same tolerance as the fast path above, evaluated on the host column.
    if not np.allclose(to_numpy(cdfs[:, -1]), 1.0, atol=1e-6):
        raise ValueError("every probability row must sum to one")
    return cdfs


def inverse_cdf_sample(
    cdf: np.ndarray,
    shape: int | tuple[int, ...],
    rng: np.random.Generator,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Draw categorical samples of ``shape`` by inverting a single CDF.

    Returns 0-based indices; index ``j`` is drawn with probability
    ``cdf[j] - cdf[j-1]``.  The uniform draws always come from the host
    ``rng`` (identical streams on every backend); with ``backend`` set, the
    ``searchsorted`` inversion runs on that namespace and the indices are
    returned in it.
    """
    if backend is None:
        u = rng.random(shape)
        choices = np.searchsorted(cdf, u, side="right")
        return np.minimum(choices, cdf.size - 1)
    be = resolve_backend(backend)
    xp = be.xp
    cdf_dev = asarray_float(be, cdf)
    u = random_uniform(be, rng, shape)
    # searchsorted in the standard operates on 1-D x2; flatten and restore.
    flat = xp.reshape(u, (-1,))
    choices = xp.searchsorted(cdf_dev, flat, side="right")
    choices = xp.minimum(choices, cdf_dev.shape[0] - 1)
    return xp.reshape(choices, u.shape)


def inverse_cdf_sample_stacked(
    cdfs: np.ndarray,
    n_trials: int,
    rng: np.random.Generator,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Draw an ``(n_trials, k)`` matrix with column ``i`` following ``cdfs[i]``.

    The ``k`` CDFs are shifted by ``2 * i`` and concatenated into one sorted
    array, so a single ``searchsorted`` inverts all of them at once — the
    whole heterogeneous-profile draw is one uniform block plus one
    binary-search pass, with no per-player Python loop.
    """
    if backend is None:
        cdfs = np.asarray(cdfs, dtype=float)
        if cdfs.ndim != 2:
            raise ValueError("cdfs must be a (k, M) matrix")
        k, m = cdfs.shape
        offsets = _STACK_SPACING * np.arange(k)
        flat = (cdfs + offsets[:, None]).ravel()
        u = rng.random((n_trials, k)) + offsets[None, :]
        indices = np.searchsorted(flat, u.ravel(), side="right").reshape(n_trials, k)
        choices = indices - (np.arange(k) * m)[None, :]
        return np.minimum(choices, m - 1)
    be = resolve_backend(backend)
    xp = be.xp
    cdfs_dev = asarray_float(be, cdfs)
    if cdfs_dev.ndim != 2:
        raise ValueError("cdfs must be a (k, M) matrix")
    k, m = int(cdfs_dev.shape[0]), int(cdfs_dev.shape[1])
    offsets = _STACK_SPACING * xp.astype(xp.arange(k), be.float_dtype)
    flat = xp.reshape(cdfs_dev + offsets[:, None], (-1,))
    u = random_uniform(be, rng, (n_trials, k)) + offsets[None, :]
    indices = xp.searchsorted(flat, xp.reshape(u, (-1,)), side="right")
    indices = xp.reshape(indices, (n_trials, k))
    choices = indices - (xp.arange(k) * m)[None, :]
    return xp.minimum(choices, m - 1)
