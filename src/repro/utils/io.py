"""Minimal CSV helpers for the experiment harness.

The benchmark and analysis code writes its numeric series to CSV so results
can be inspected or re-plotted outside this environment.  Only the tiny
subset of CSV functionality we need is implemented (floats and strings, comma
separated, header row), keeping the dependency footprint at zero.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = ["write_csv", "read_csv", "write_series"]


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write ``rows`` under ``headers`` to ``path`` and return the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return out


def write_series(path: str | Path, series: Mapping[str, Sequence[float]]) -> Path:
    """Write a dict of equal-length numeric columns to CSV.

    Raises ``ValueError`` when columns have mismatched lengths.
    """
    if not series:
        raise ValueError("series must not be empty")
    lengths = {name: len(col) for name, col in series.items()}
    distinct = set(lengths.values())
    if len(distinct) != 1:
        raise ValueError(f"columns have mismatched lengths: {lengths}")
    names = list(series.keys())
    columns = [np.asarray(series[name], dtype=float) for name in names]
    rows = [[float(col[i]) for col in columns] for i in range(distinct.pop())]
    return write_csv(path, names, rows)


def read_csv(path: str | Path) -> tuple[list[str], list[list[str]]]:
    """Read a CSV produced by :func:`write_csv`; returns ``(headers, rows)``."""
    src = Path(path)
    with src.open("r", newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{src} is empty")
    return rows[0], rows[1:]
