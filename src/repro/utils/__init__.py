"""Shared utilities: numerics, validation, formatting and lightweight I/O.

These helpers are deliberately dependency-free (NumPy only) and are used by
every other subpackage.  Nothing in here is specific to the dispersal game.
"""

from repro.utils.canonical import (
    canonical_distribution,
    canonical_k_grid,
    canonical_request,
    canonical_times,
    canonical_values,
    content_key,
)
from repro.utils.coercion import strategy_array, values_array
from repro.utils.envinfo import available_cpus, environment_metadata
from repro.utils.memo import PlanMemo, cached_binomial_pmf_plan, plan_memo
from repro.utils.numerics import (
    assert_shape,
    binomial_pmf_matrix,
    binomial_pmf_tensor,
    clip_probability,
    is_non_increasing,
    safe_power,
    simplex_projection,
)
from repro.utils.validation import (
    check_integer,
    check_positive_integer,
    check_probability,
    check_probability_vector,
    check_value_vector,
)
from repro.utils.rng import as_generator, spawn_generators, spawn_seed_sequences
from repro.utils.sampling import (
    inverse_cdf_sample,
    inverse_cdf_sample_stacked,
    stacked_cdfs,
    strategy_cdf,
)
from repro.utils.tables import format_table
from repro.utils.io import write_csv, read_csv

__all__ = [
    "strategy_array",
    "values_array",
    "available_cpus",
    "environment_metadata",
    "canonical_distribution",
    "canonical_k_grid",
    "canonical_request",
    "canonical_times",
    "canonical_values",
    "content_key",
    "PlanMemo",
    "cached_binomial_pmf_plan",
    "plan_memo",
    "as_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "binomial_pmf_tensor",
    "inverse_cdf_sample",
    "inverse_cdf_sample_stacked",
    "stacked_cdfs",
    "strategy_cdf",
    "assert_shape",
    "binomial_pmf_matrix",
    "clip_probability",
    "is_non_increasing",
    "safe_power",
    "simplex_projection",
    "check_integer",
    "check_positive_integer",
    "check_probability",
    "check_probability_vector",
    "check_value_vector",
    "format_table",
    "write_csv",
    "read_csv",
]
