"""Command-line interface for the reproduction experiments.

Usage (after ``pip install -e .``)::

    repro-dispersal figure1 [--output-dir results/]
    repro-dispersal observation1
    repro-dispersal spoa
    repro-dispersal ess
    repro-dispersal sweep [--m 20] [--policy sharing exclusive]

or equivalently ``python -m repro.cli ...``.  Each sub-command prints a text
report; ``figure1`` additionally writes the numeric series to CSV when an
output directory is given.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.ess_experiments import ess_experiment
from repro.analysis.figure1 import figure1_panels, write_figure1_csv
from repro.analysis.observation1 import observation1_experiment
from repro.analysis.reporting import figure1_report, render_report, rows_to_table
from repro.analysis.spoa_experiments import (
    sharing_spoa_upper_bound_check,
    spoa_experiment,
    theorem6_certificates,
)
from repro.analysis.sweeps import coverage_ratio_sweep
from repro.core.policies import (
    AggressivePolicy,
    CongestionPolicy,
    ConstantPolicy,
    ExclusivePolicy,
    PowerLawPolicy,
    SharingPolicy,
)
from repro.core.values import SiteValues
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]

_POLICY_FACTORIES = {
    "exclusive": ExclusivePolicy,
    "sharing": SharingPolicy,
    "constant": ConstantPolicy,
    "aggressive": lambda: AggressivePolicy(0.5),
    "power-law": lambda: PowerLawPolicy(2.0),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-dispersal",
        description="Reproduction experiments for Collet & Korman, SPAA 2018.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure1", help="Regenerate the two panels of Figure 1.")
    fig.add_argument("--output-dir", type=Path, default=None, help="Write CSV series here.")
    fig.add_argument("--points", type=int, default=51, help="Grid points on c in [-0.5, 0.5].")
    fig.add_argument("--no-plot", action="store_true", help="Skip the ASCII plots.")

    sub.add_parser("observation1", help="Check the (1 - 1/e) coverage bound.")

    spoa = sub.add_parser("spoa", help="SPoA experiments (Corollary 5, Theorem 6).")
    spoa.add_argument("--quick", action="store_true", help="Smaller instance grid.")

    ess = sub.add_parser("ess", help="ESS audit of sigma_star (Theorem 3).")
    ess.add_argument("--mutants", type=int, default=25, help="Random mutants per instance.")

    sweep = sub.add_parser("sweep", help="Coverage-ratio sweep over k for several policies.")
    sweep.add_argument("--m", type=int, default=20, help="Number of sites.")
    sweep.add_argument(
        "--policy",
        nargs="+",
        choices=sorted(_POLICY_FACTORIES),
        default=["exclusive", "sharing", "constant"],
    )
    return parser


def _run_figure1(args: argparse.Namespace) -> str:
    c_grid = np.linspace(-0.5, 0.5, args.points)
    panels = figure1_panels(c_grid=c_grid)
    report = figure1_report(panels, plot=not args.no_plot)
    if args.output_dir is not None:
        paths = write_figure1_csv(args.output_dir, c_grid=c_grid)
        report += "\n\nCSV written to:\n" + "\n".join(str(path) for path in paths)
    return report


def _run_observation1(_: argparse.Namespace) -> str:
    rows = observation1_experiment()
    holds = all(row.holds for row in rows)
    return render_report(
        "Observation 1: Cover(p*) > (1 - 1/e) * top-k value",
        [
            (f"All {len(rows)} instances satisfy the bound: {holds}", rows_to_table(rows)),
        ],
    )


def _run_spoa(args: argparse.Namespace) -> str:
    if args.quick:
        rows = spoa_experiment(m_values=(2, 5), k_values=(2, 3), n_random=3)
    else:
        rows = spoa_experiment()
    certificates = theorem6_certificates()
    cert_table = format_table(
        ["policy", "SPoA on Theorem-6 instance"],
        [[name, value] for name, value in certificates.items()],
    )
    sharing_bound = sharing_spoa_upper_bound_check(n_random=5 if args.quick else 25)
    return render_report(
        "Symmetric Price of Anarchy",
        [
            ("Worst per-instance SPoA per policy (Corollary 5: exclusive = 1)", rows_to_table(rows)),
            ("Theorem 6 certificates (non-exclusive policies are > 1)", cert_table),
            ("Sharing policy randomized search (bound is 2)", f"max ratio found: {sharing_bound:.6f}"),
        ],
    )


def _run_ess(args: argparse.Namespace) -> str:
    rows = ess_experiment(n_random_mutants=args.mutants)
    all_ess = all(row.is_ess for row in rows)
    return render_report(
        "Theorem 3: sigma_star is an ESS under the exclusive policy",
        [
            (f"All {len(rows)} instances passed the ESS audit: {all_ess}", rows_to_table(rows)),
        ],
    )


def _run_sweep(args: argparse.Namespace) -> str:
    policies: list[CongestionPolicy] = [_POLICY_FACTORIES[name]() for name in args.policy]
    values = SiteValues.zipf(args.m, exponent=1.0)
    sweep = coverage_ratio_sweep(values, policies)
    headers = [sweep.x_label] + list(sweep.curves.keys())
    rows = []
    for index, x in enumerate(sweep.x_values):
        rows.append([int(x)] + [float(curve[index]) for curve in sweep.curves.values()])
    return render_report(
        f"Equilibrium coverage / optimal coverage on a Zipf instance (M={args.m})",
        [("ratio by number of players k", format_table(headers, rows))],
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``repro-dispersal`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    runners = {
        "figure1": _run_figure1,
        "observation1": _run_observation1,
        "spoa": _run_spoa,
        "ess": _run_ess,
        "sweep": _run_sweep,
    }
    print(runners[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
