"""Command-line interface for the reproduction experiments.

Usage (after ``pip install -e .``)::

    repro-dispersal figure1 [--output-dir results/] [--seed 0] [--json]
    repro-dispersal observation1
    repro-dispersal spoa [--quick]
    repro-dispersal ess [--mutants 25]
    repro-dispersal sweep [--m 20] [--policy sharing exclusive]
    repro-dispersal dynamics [--rule logit] [--grid full] [--batch 128]
    repro-dispersal travel-costs [--policy sharing] [--cost-scales 0 0.1 0.3]
    repro-dispersal group-competition [--policies exclusive sharing aggressive]
    repro-dispersal repeated [--rounds 6] [--depletions 0 0.25 0.5]
    repro-dispersal search [--trials 600] [--strategies sigma_star uniform]
    repro-dispersal coverage-times [--trials 400] [--horizon 64]
    repro-dispersal mechanism [--policies exclusive sharing] [--design-policy sharing]
    repro-dispersal serve [--host 127.0.0.1] [--port 8080] [--max-batch 64]
    repro-dispersal worker --connect HOST:PORT
    repro-dispersal experiments

or equivalently ``python -m repro.cli ...``.  Every sub-command is a thin
client of the experiment registry (:mod:`repro.experiments`): the command
builds the registered spec, hands it to the runner and renders the resulting
rows.  Three flags are shared by all sub-commands:

``--seed S``
    Base seed of the experiment; reruns with the same seed are bit-identical
    (per-task generators are spawned deterministically from it).
``--json``
    Print the structured :class:`~repro.experiments.result.ExperimentResult`
    as JSON instead of the text report.
``--workers N``
    Fan tasks out to ``N`` worker processes (``0`` = serial, ``-1`` = one per
    CPU); the output does not depend on the worker count.
``--backend NAME``
    Array backend the batched kernels run on (``numpy`` default;
    ``array_api_strict`` / ``torch`` / ``cupy`` when installed — see
    ``repro.backend``).  The choice is activated around every task, in
    worker processes too, and the results do not depend on it; the
    ``REPRO_BACKEND`` environment variable sets the same default globally.
``--device NAME``
    Device the backend places arrays on (``cpu`` default; ``cuda`` / ``mps``
    with the torch backend when the accelerator is present — see
    ``repro.backend.with_device``).  Validated eagerly, threaded into worker
    processes by name, and settable globally via ``REPRO_DEVICE``.
``--executor NAME``
    Execution strategy (``serial`` / ``process`` / ``async`` /
    ``distributed`` — see ``repro.experiments.executors``); all strategies
    produce bit-identical results.  ``distributed`` auto-spawns local
    workers, or serves external ``repro-dispersal worker`` processes when
    ``--bind HOST:PORT`` is given.
``--store DIR`` / ``--resume``
    Persist every finished grid cell to an incremental content-addressed
    store as it completes, and skip cells already stored — interrupted
    sweeps resume where they left off and widened grids only compute the
    new cells.  ``--resume`` alone uses the default ``.repro-store``
    directory.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.ess_experiments import build_ess_spec
from repro.analysis.figure1 import assemble_figure1_panels, build_figure1_spec, write_panels_csv
from repro.analysis.observation1 import build_observation1_spec
from repro.analysis.reporting import figure1_report, render_report, rows_to_table
from repro.analysis.spoa_experiments import (
    CertificateRow,
    SharingBoundRow,
    SPoARow,
    build_spoa_spec,
)
from repro.analysis.scenario_experiments import (
    POLICY_FACTORIES as _POLICY_FACTORIES,
    build_group_competition_spec,
    build_repeated_spec,
    build_travel_costs_spec,
)
from repro.analysis.stochastic_experiments import (
    SEARCH_STRATEGY_FACTORIES as _SEARCH_STRATEGIES,
    GrantDesignRow,
    MechanismPolicyRow,
    build_coverage_times_spec,
    build_mechanism_spec,
    build_search_spec,
)
from repro.analysis.sweeps import assemble_sweep, build_dynamics_spec, build_sweep_spec
from repro.backend import BackendNotAvailableError, available_backends, resolve_backend
from repro.experiments.executors import DistributedExecutor, executor_names
from repro.experiments.registry import experiment_names, get_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import resolve_workers, run_experiment
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]

#: Preset grid densities of the ``dynamics`` sub-command (``--grid``).
_DYNAMICS_GRIDS = {
    "quick": {
        "families": ("uniform", "zipf"),
        "m_values": (5, 8),
        "k_values": (2, 3),
        "inits": ("uniform", "random"),
    },
    "full": {
        "families": ("uniform", "zipf", "geometric", "linear"),
        "m_values": (6, 12, 24),
        "k_values": (2, 3, 5, 8),
        "inits": ("uniform", "proportional", "random"),
    },
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0, help="Base seed (bit-identical reruns).")
    common.add_argument(
        "--json", action="store_true", help="Print the structured result as JSON."
    )
    common.add_argument(
        "--workers",
        type=int,
        default=0,
        help="Worker processes (0 = serial, -1 = one per CPU).",
    )
    common.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "Array backend for the batched kernels (default: REPRO_BACKEND or "
            "numpy; array_api_strict/torch/cupy when installed — an unknown "
            "name lists what resolved on this machine)."
        ),
    )
    common.add_argument(
        "--device",
        default=None,
        metavar="NAME",
        choices=("cpu", "cuda", "mps"),
        help=(
            "Device the backend places arrays on (default: REPRO_DEVICE or "
            "cpu; cuda/mps need the torch backend plus the accelerator)."
        ),
    )
    common.add_argument(
        "--executor",
        default=None,
        choices=executor_names(),
        help=(
            "Execution strategy (default: serial below two --workers, process "
            "pool otherwise); every strategy is bit-identical."
        ),
    )
    common.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "Incremental experiment store: finished grid cells are persisted "
            "here as they complete and skipped on re-runs (resume/extend)."
        ),
    )
    common.add_argument(
        "--resume",
        action="store_true",
        help="Shorthand for --store .repro-store (resume into the default store).",
    )
    common.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help=(
            "With --executor distributed: serve task chunks on this address "
            "to externally started 'repro-dispersal worker' processes instead "
            "of auto-spawning local workers."
        ),
    )

    parser = argparse.ArgumentParser(
        prog="repro-dispersal",
        description="Reproduction experiments for Collet & Korman, SPAA 2018.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser(
        "figure1", parents=[common], help="Regenerate the two panels of Figure 1."
    )
    fig.add_argument("--output-dir", type=Path, default=None, help="Write CSV series here.")
    fig.add_argument("--points", type=int, default=51, help="Grid points on c in [-0.5, 0.5].")
    fig.add_argument("--no-plot", action="store_true", help="Skip the ASCII plots.")

    sub.add_parser(
        "observation1", parents=[common], help="Check the (1 - 1/e) coverage bound."
    )

    spoa = sub.add_parser(
        "spoa", parents=[common], help="SPoA experiments (Corollary 5, Theorem 6)."
    )
    spoa.add_argument("--quick", action="store_true", help="Smaller instance grid.")

    ess = sub.add_parser("ess", parents=[common], help="ESS audit of sigma_star (Theorem 3).")
    ess.add_argument("--mutants", type=int, default=25, help="Random mutants per instance.")

    sweep = sub.add_parser(
        "sweep", parents=[common], help="Coverage-ratio sweep over k for several policies."
    )
    sweep.add_argument("--m", type=int, default=20, help="Number of sites.")
    sweep.add_argument(
        "--policy",
        nargs="+",
        choices=sorted(_POLICY_FACTORIES),
        default=["exclusive", "sharing", "constant"],
    )

    dynamics = sub.add_parser(
        "dynamics",
        parents=[common],
        help="Batched evolutionary-dynamics sweep over a (family, M, k, init) grid.",
    )
    dynamics.add_argument(
        "--rule",
        choices=["discrete", "euler", "logit", "best-response"],
        default="discrete",
        help="Update rule stepped by the batched DynamicsEngine.",
    )
    dynamics.add_argument(
        "--policy",
        choices=sorted(_POLICY_FACTORIES),
        default="sharing",
        help="Congestion policy shared by every trajectory.",
    )
    dynamics.add_argument(
        "--grid",
        choices=sorted(_DYNAMICS_GRIDS),
        default="quick",
        help="Preset (family, M, k, init) grid density, passed to the spec builder.",
    )
    dynamics.add_argument(
        "--batch",
        type=int,
        default=None,
        help=(
            "Trajectories per engine run (= rows per runner task; default: "
            "auto-tuned from the grid size and CPU count)."
        ),
    )
    dynamics.add_argument("--max-iter", type=int, default=20_000, help="Iteration cap per row.")

    travel = sub.add_parser(
        "travel-costs",
        parents=[common],
        help="Cost-adjusted equilibria over a (family, M, k, cost-scale) grid.",
    )
    travel.add_argument(
        "--policy",
        choices=sorted(_POLICY_FACTORIES),
        default="sharing",
        help="Congestion policy shared by every cell.",
    )
    travel.add_argument(
        "--cost-scales",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.3],
        metavar="S",
        help="Cost ceilings as fractions of the mean site value (0 = cost-free).",
    )
    travel.add_argument(
        "--batch",
        type=int,
        default=None,
        help="Grid cells per batched solver call (default: auto-tuned).",
    )

    competition = sub.add_parser(
        "group-competition",
        parents=[common],
        help="Sequential two-group contests over every ordered policy pair.",
    )
    competition.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(_POLICY_FACTORIES),
        default=["exclusive", "sharing", "aggressive"],
        help="Within-group rule roster (every ordered pair competes).",
    )
    competition.add_argument("--k", type=int, default=6, help="First group size.")
    competition.add_argument(
        "--k-second", type=int, default=None, help="Second group size (default: --k)."
    )
    competition.add_argument(
        "--batch",
        type=int,
        default=None,
        help="Matchups per batched solver call (default: auto-tuned).",
    )

    repeated = sub.add_parser(
        "repeated",
        parents=[common],
        help="Expected multi-round depletion horizons (constant vs adaptive).",
    )
    repeated.add_argument(
        "--schedules",
        nargs="+",
        choices=["adaptive", "constant"],
        default=["adaptive", "constant"],
        help="Round-strategy schedules to evaluate.",
    )
    repeated.add_argument("--rounds", type=int, default=6, help="Horizon length T.")
    repeated.add_argument(
        "--depletions",
        type=float,
        nargs="+",
        default=[0.0, 0.25, 0.5],
        metavar="D",
        help="Surviving value fractions in [0, 1) (0 = fully consumed).",
    )
    repeated.add_argument(
        "--batch",
        type=int,
        default=None,
        help="Horizons per batched kernel call (default: auto-tuned).",
    )

    search = sub.add_parser(
        "search",
        parents=[common],
        help="Bayesian box-search baselines: closed forms vs batched simulation.",
    )
    search.add_argument(
        "--strategies",
        nargs="+",
        choices=sorted(_SEARCH_STRATEGIES),
        default=["sigma_star", "uniform", "proportional", "greedy_top_k"],
        help="Round-strategy roster evaluated on every problem.",
    )
    search.add_argument("--trials", type=int, default=600, help="Simulated searches per cell.")
    search.add_argument(
        "--max-rounds", type=int, default=400, help="Censoring horizon of the simulation."
    )
    search.add_argument(
        "--batch",
        type=int,
        default=None,
        help="Grid cells per batched kernel call (default: auto-tuned).",
    )

    coverage_times = sub.add_parser(
        "coverage-times",
        parents=[common],
        help="Exact Von Schelling coverage-time laws vs the Monte-Carlo estimator.",
    )
    coverage_times.add_argument(
        "--strategies",
        nargs="+",
        choices=sorted(_SEARCH_STRATEGIES),
        default=["sigma_star", "uniform", "proportional", "greedy_top_k"],
        help="Round-strategy roster evaluated on every problem.",
    )
    coverage_times.add_argument(
        "--trials", type=int, default=400, help="Simulated coverage runs per cell."
    )
    coverage_times.add_argument(
        "--max-rounds", type=int, default=4000, help="Censoring horizon of the simulation."
    )
    coverage_times.add_argument(
        "--horizon", type=int, default=64, help="Round at which the exact CDF is reported."
    )
    coverage_times.add_argument(
        "--batch",
        type=int,
        default=None,
        help="Grid cells per batched kernel call (default: auto-tuned).",
    )

    mechanism = sub.add_parser(
        "mechanism",
        parents=[common],
        help="Congestion-rule design vs Kleinberg-Oren reward design.",
    )
    mechanism.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(_POLICY_FACTORIES),
        default=["exclusive", "sharing", "constant", "aggressive"],
        help="Congestion-rule roster swept over the grid (the paper's lever).",
    )
    mechanism.add_argument(
        "--design-policy",
        choices=sorted(_POLICY_FACTORIES),
        default="sharing",
        help="Fixed rule the reward-design lever re-prices sites under.",
    )
    mechanism.add_argument(
        "--batch",
        type=int,
        default=None,
        help="Grid cells per batched kernel call (default: auto-tuned).",
    )

    serve = sub.add_parser(
        "serve",
        help="Run the online equilibrium service (continuous batching + cache).",
        description=(
            "Persistent asyncio HTTP service exposing /solve, /sweep, /mechanism, "
            "/coverage-times, /healthz and /stats.  Requests dispatch immediately "
            "when the kernels are idle and accumulate only while they are busy "
            "(up to --max-batch, backstopped by --max-wait-ms); kernel calls run "
            "on the --executor of choice, repeated requests are answered from a "
            "content-addressed LRU cache, and a full --max-pending queue sheds "
            "load with 503 + Retry-After."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="Interface to bind.")
    serve.add_argument("--port", type=int, default=8080, help="TCP port (0 = ephemeral).")
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="Flush the coalescing window once this many requests are queued.",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="Accumulation backstop: no admitted request waits longer than this "
        "for co-batchable traffic while kernels are busy.",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="LRU result-cache capacity in entries (0 disables caching).",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="Bounded pending-queue depth; beyond it requests get 503 + Retry-After.",
    )
    serve.add_argument(
        "--executor",
        default=None,
        choices=("inline", "thread", "process"),
        help="Where batched kernel calls run: on the event loop (inline, default), "
        "on a thread pool, or on a warm process pool.",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="Pool size for --executor thread/process (default: visible CPU count).",
    )
    serve.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="Array backend the coalesced kernels run on (default: REPRO_BACKEND or numpy).",
    )
    serve.add_argument(
        "--device",
        default=None,
        metavar="NAME",
        choices=("cpu", "cuda", "mps"),
        help="Device the backend places arrays on (default: REPRO_DEVICE or cpu).",
    )

    worker = sub.add_parser(
        "worker",
        help="Join a distributed sweep: pull task chunks from a coordinator.",
        description=(
            "Connect to the coordinator of a '--executor distributed' run "
            "(its --bind address) and execute task chunks until the sweep "
            "finishes.  Results are bit-identical to local execution — each "
            "chunk carries its own per-task seeds.  Needs nothing but this "
            "package on PYTHONPATH; the wire format is pickle, so only "
            "connect to coordinators you trust."
        ),
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="Coordinator address to pull task chunks from.",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="Give up if the coordinator is unreachable for this long.",
    )

    sub.add_parser(
        "experiments", parents=[common], help="List the registered experiments."
    )
    return parser


def _execute(spec, args: argparse.Namespace) -> ExperimentResult:
    backend = getattr(args, "backend", None)
    device = getattr(args, "device", None)
    if backend is not None or device is not None:
        # Validate eagerly for a clean error; backend detection stays lazy so
        # plain CLI runs never pay (or crash on) torch/cupy imports.  The
        # device check also runs here so a missing accelerator fails before
        # any work is scheduled rather than inside a worker process.
        try:
            resolve_backend(backend, device=device)
        except BackendNotAvailableError as error:
            raise SystemExit(
                f"error: {error} (available: {', '.join(available_backends())})"
            ) from error
    executor = getattr(args, "executor", None)
    bind = getattr(args, "bind", None)
    if bind is not None and executor != "distributed":
        raise SystemExit("error: --bind requires --executor distributed")
    if executor == "distributed":
        if bind is not None:
            # External-workers mode: bind the requested address, spawn
            # nothing, and wait for `repro-dispersal worker` connections.
            from repro.experiments.worker import parse_address

            host, port = parse_address(bind)
            executor = DistributedExecutor(host=host, port=port, spawn=None)
            print(f"distributed: serving task chunks on {host}:{port}", flush=True)
        else:
            executor = DistributedExecutor(
                workers=resolve_workers(args.workers) or None, spawn="process"
            )
    store = getattr(args, "store", None)
    if store is None and getattr(args, "resume", False):
        store = Path(".repro-store")
    return run_experiment(
        spec,
        max_workers=args.workers,
        backend=backend,
        device=device,
        executor=executor,
        store=store,
    )


def _run_figure1(args: argparse.Namespace) -> str:
    spec = build_figure1_spec(points=args.points, seed=args.seed)
    result = _execute(spec, args)
    panels = assemble_figure1_panels(result.rows)
    # CSV artifacts are written regardless of the output mode, so --json and
    # --output-dir compose.
    paths = write_panels_csv(panels, args.output_dir) if args.output_dir is not None else []
    if args.json:
        return result.to_json(timing=False)
    report = figure1_report(panels, plot=not args.no_plot)
    if paths:
        report += "\n\nCSV written to:\n" + "\n".join(str(path) for path in paths)
    return report


def _run_observation1(args: argparse.Namespace) -> str:
    spec = build_observation1_spec(seed=args.seed)
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    holds = all(row.holds for row in rows)
    return render_report(
        "Observation 1: Cover(p*) > (1 - 1/e) * top-k value",
        [
            (f"All {len(rows)} instances satisfy the bound: {holds}", rows_to_table(rows)),
        ],
    )


def _run_spoa(args: argparse.Namespace) -> str:
    spec = build_spoa_spec(quick=args.quick, seed=args.seed)
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    worst_rows = result.rows_of_type(SPoARow)
    certificates = result.rows_of_type(CertificateRow)
    sharing_rows = result.rows_of_type(SharingBoundRow)
    # Duplicate display names (two-level / power-law parameterisations) are
    # suffixed, matching the legacy theorem6_certificates() dict keys.
    cert_names: list[str] = []
    for row in certificates:
        name = row.policy_name
        if name in cert_names:
            name = f"{name}-{len(cert_names)}"
        cert_names.append(name)
    cert_table = format_table(
        ["policy", "m", "k", "SPoA on Theorem-6 instance"],
        [
            [name, row.m, row.k, row.ratio]
            for name, row in zip(cert_names, certificates)
        ],
    )
    sharing_line = "\n".join(
        f"max ratio found: {row.max_ratio:.6f} ({row.n_instances} instances)"
        for row in sharing_rows
    )
    return render_report(
        "Symmetric Price of Anarchy",
        [
            (
                "Worst per-instance SPoA per policy (Corollary 5: exclusive = 1)",
                rows_to_table(worst_rows),
            ),
            ("Theorem 6 certificates (non-exclusive policies are > 1)", cert_table),
            ("Sharing policy randomized search (bound is 2)", sharing_line),
        ],
    )


def _run_ess(args: argparse.Namespace) -> str:
    spec = build_ess_spec(n_random_mutants=args.mutants, seed=args.seed)
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    all_ess = all(row.is_ess for row in rows)
    return render_report(
        "Theorem 3: sigma_star is an ESS under the exclusive policy",
        [
            (f"All {len(rows)} instances passed the ESS audit: {all_ess}", rows_to_table(rows)),
        ],
    )


def _run_sweep(args: argparse.Namespace) -> str:
    policies = [_POLICY_FACTORIES[name]() for name in args.policy]
    spec = build_sweep_spec(policies=policies, m=args.m, seed=args.seed)
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    sweep = assemble_sweep(result.rows)
    headers = [sweep.x_label] + list(sweep.curves.keys())
    rows = []
    for index, x in enumerate(sweep.x_values):
        rows.append([int(x)] + [float(curve[index]) for curve in sweep.curves.values()])
    return render_report(
        f"Equilibrium coverage / optimal coverage on a Zipf instance (M={args.m})",
        [("ratio by number of players k", format_table(headers, rows))],
    )


def _run_dynamics(args: argparse.Namespace) -> str:
    spec = build_dynamics_spec(
        rule=args.rule,
        policy=_POLICY_FACTORIES[args.policy](),
        batch_rows=args.batch,
        max_iter=args.max_iter,
        seed=args.seed,
        **_DYNAMICS_GRIDS[args.grid],
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    n_converged = sum(row.converged for row in rows)
    worst = max(row.exploitability for row in rows)
    return render_report(
        f"Batched {args.rule} dynamics under the {args.policy} policy",
        [
            (
                f"{n_converged}/{len(rows)} trajectories converged; "
                f"worst final exploitability {worst:.3e}",
                rows_to_table(rows),
            ),
        ],
    )


def _run_travel_costs(args: argparse.Namespace) -> str:
    spec = build_travel_costs_spec(
        policy=args.policy,
        cost_scales=args.cost_scales,
        batch_rows=args.batch,
        seed=args.seed,
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    free = [row for row in rows if row.cost_scale == 0.0]
    costly = [row for row in rows if row.cost_scale > 0.0]
    free_line = (
        f"cost-free rows reduce to the core model "
        f"(mean coverage ratio {np.mean([r.coverage_ratio for r in free]):.4f})"
        if free
        else "(no cost-free rows in the grid)"
    )
    costly_line = (
        f"costly rows: mean coverage ratio "
        f"{np.mean([r.coverage_ratio for r in costly]):.4f}, "
        f"worst {min(r.coverage_ratio for r in costly):.4f}"
        if costly
        else "(no costly rows in the grid)"
    )
    return render_report(
        f"Travel costs under the {args.policy} policy",
        [(f"{free_line}; {costly_line}", rows_to_table(rows))],
    )


def _run_group_competition(args: argparse.Namespace) -> str:
    spec = build_group_competition_spec(
        policies=args.policies,
        k=args.k,
        k_second=args.k_second,
        batch_rows=args.batch,
        seed=args.seed,
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    by_first: dict[str, list[float]] = {}
    for row in rows:
        by_first.setdefault(row.first_policy, []).append(row.first_share)
    ranking = sorted(by_first.items(), key=lambda item: -float(np.mean(item[1])))
    headline = ", ".join(
        f"{name} eats {float(np.mean(shares)):.3f} of the pie when first"
        for name, shares in ranking
    )
    return render_report(
        "Two-group competition (first feeds, second takes the leftovers)",
        [(headline, rows_to_table(rows))],
    )


def _run_repeated(args: argparse.Namespace) -> str:
    spec = build_repeated_spec(
        schedules=args.schedules,
        rounds=args.rounds,
        depletions=args.depletions,
        batch_rows=args.batch,
        seed=args.seed,
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    by_schedule: dict[str, list[float]] = {}
    for row in rows:
        by_schedule.setdefault(row.schedule, []).append(row.cumulative_consumption)
    headline = "; ".join(
        f"{name}: mean cumulative consumption {float(np.mean(total)):.3f}"
        for name, total in sorted(by_schedule.items())
    )
    return render_report(
        f"Repeated dispersal with depletion over {args.rounds} rounds",
        [(headline, rows_to_table(rows))],
    )


def _run_search(args: argparse.Namespace) -> str:
    spec = build_search_spec(
        strategies=args.strategies,
        n_trials=args.trials,
        max_rounds=args.max_rounds,
        batch_rows=args.batch,
        seed=args.seed,
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    by_cell: dict[tuple, list] = {}
    for row in rows:
        by_cell.setdefault((row.family, row.m, row.k), []).append(row)
    wins = sum(
        1
        for cell_rows in by_cell.values()
        if max(cell_rows, key=lambda r: r.success_probability).strategy == "sigma_star"
    )
    headline = (
        f"sigma_star has the best single-round success probability on "
        f"{wins}/{len(by_cell)} problems (Theorem 4 with the prior as value function)"
    )
    return render_report(
        "Parallel Bayesian search: round-strategy baselines",
        [(headline, rows_to_table(rows))],
    )


def _run_coverage_times(args: argparse.Namespace) -> str:
    spec = build_coverage_times_spec(
        strategies=args.strategies,
        n_trials=args.trials,
        max_rounds=args.max_rounds,
        horizon=args.horizon,
        batch_rows=args.batch,
        seed=args.seed,
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    rows = list(result.rows)
    validated = [
        row
        for row in rows
        if np.isfinite(row.expected_rounds) and row.censored_trials == 0
    ]
    uncoverable = sum(1 for row in rows if not np.isfinite(row.expected_rounds))
    censored = sum(1 for row in rows if np.isfinite(row.expected_rounds) and row.censored_trials)
    max_z = max((row.z_score for row in validated), default=float("nan"))
    headline = (
        f"exact vs Monte-Carlo agreement on {len(validated)}/{len(rows)} rows "
        f"(max |z| = {max_z:.2f}; {uncoverable} uncoverable, {censored} censored)"
    )
    return render_report(
        "Coverage times: exact Von Schelling laws vs merged-search simulation",
        [(headline, rows_to_table(rows))],
    )


def _run_mechanism(args: argparse.Namespace) -> str:
    spec = build_mechanism_spec(
        policies=args.policies,
        design_policy=args.design_policy,
        batch_rows=args.batch,
        seed=args.seed,
    )
    result = _execute(spec, args)
    if args.json:
        return result.to_json(timing=False)
    policy_rows = result.rows_of_type(MechanismPolicyRow)
    grant_rows = result.rows_of_type(GrantDesignRow)
    by_policy: dict[str, list[float]] = {}
    for row in policy_rows:
        by_policy.setdefault(row.policy_name, []).append(
            row.equilibrium_coverage / row.optimal_coverage if row.optimal_coverage > 0 else np.nan
        )
    ranking = sorted(by_policy.items(), key=lambda item: -float(np.mean(item[1])))
    policy_line = ", ".join(
        f"{name}: {float(np.mean(ratios)):.4f}" for name, ratios in ranking
    )
    grant_line = (
        f"grant design under the {args.design_policy} rule reaches "
        f"{float(np.mean([r.induced_coverage / r.optimal_coverage for r in grant_rows if r.optimal_coverage > 0])):.4f} "
        f"of the optimum (worst max deviation "
        f"{max(r.max_deviation for r in grant_rows):.2e})"
        if grant_rows
        else "(no grant-design rows)"
    )
    return render_report(
        "Mechanism design: congestion rules vs reward (grant) design",
        [
            (
                f"mean coverage ratio by congestion rule — {policy_line}",
                rows_to_table(policy_rows),
            ),
            (grant_line, rows_to_table(grant_rows)),
        ],
    )


def _run_serve(args: argparse.Namespace) -> str:
    # Deferred import: plain experiment commands never pay for asyncio/serving.
    import asyncio

    from repro.serving import serve_forever

    backend = args.backend
    if backend is not None or args.device is not None:
        try:
            # Serving runs in-process, so the resolved (device-pinned) handle
            # can be handed to the coalescer directly instead of by name.
            backend = resolve_backend(backend, device=args.device)
        except BackendNotAvailableError as error:
            raise SystemExit(
                f"error: {error} (available: {', '.join(available_backends())})"
            ) from error
    try:
        asyncio.run(
            serve_forever(
                args.host,
                args.port,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                cache_size=args.cache_size,
                backend=backend,
                max_pending=args.max_pending,
                executor=args.executor,
                workers=args.workers,
            )
        )
    except KeyboardInterrupt:
        pass
    return "serve: shut down"


def _run_worker(args: argparse.Namespace) -> str:
    # Deferred import: experiment commands never pay for the worker loop.
    from repro.experiments.worker import run_worker

    executed = run_worker(args.connect, connect_timeout=args.connect_timeout)
    return f"worker: executed {executed} chunks"


def _run_experiments(args: argparse.Namespace) -> str:
    definitions = [get_experiment(name) for name in experiment_names()]
    if args.json:
        return json.dumps(
            {d.name: d.summary for d in definitions}, indent=2, sort_keys=True
        )
    lines = [[d.name, d.summary] for d in definitions]
    return render_report(
        "Registered experiments",
        [("name / summary", format_table(["experiment", "summary"], lines))],
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by the ``repro-dispersal`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    runners = {
        "figure1": _run_figure1,
        "observation1": _run_observation1,
        "spoa": _run_spoa,
        "ess": _run_ess,
        "sweep": _run_sweep,
        "dynamics": _run_dynamics,
        "travel-costs": _run_travel_costs,
        "group-competition": _run_group_competition,
        "repeated": _run_repeated,
        "search": _run_search,
        "coverage-times": _run_coverage_times,
        "mechanism": _run_mechanism,
        "serve": _run_serve,
        "worker": _run_worker,
        "experiments": _run_experiments,
    }
    print(runners[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
