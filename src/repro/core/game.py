"""High-level facade: one object bundling a complete dispersal-game instance.

:class:`DispersalGame` ties together the pieces a typical user needs for one
``(f, k, C)`` instance — equilibrium, optimum, prices of anarchy, ESS audit,
welfare, simulation — behind a small object-oriented API, with caching of the
expensive solves.  Everything it returns is produced by the underlying
functional modules, so the facade adds convenience, not new semantics.

Example
-------
>>> from repro import DispersalGame, SiteValues, ExclusivePolicy
>>> game = DispersalGame(SiteValues.geometric(6, ratio=0.6), k=3, policy=ExclusivePolicy())
>>> round(game.price_of_anarchy(), 6)
1.0
>>> game.equilibrium().strategy == game.optimal_strategy()
True
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.core.coverage import coverage, full_coordination_coverage
from repro.core.ess import ESSReport, ess_report
from repro.core.ifd import IFDResult, ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage_strategy
from repro.core.payoffs import exploitability, site_values
from repro.core.policies import CongestionPolicy, ExclusivePolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import WelfareOptimum, welfare_optimal_strategy
from repro.utils.validation import check_positive_integer

__all__ = ["DispersalGame"]


class DispersalGame:
    """A dispersal-game instance ``(f, k, C)`` with cached solutions.

    Parameters
    ----------
    values:
        Site values (anything accepted by :class:`~repro.core.values.SiteValues`).
    k:
        Number of players.
    policy:
        Congestion policy; defaults to the exclusive policy, the paper's main
        object of study.
    """

    def __init__(
        self,
        values: SiteValues | np.ndarray | list[float],
        k: int,
        policy: CongestionPolicy | None = None,
    ) -> None:
        self.values = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
        self.k = check_positive_integer(k, "k")
        self.policy = policy if policy is not None else ExclusivePolicy()
        self.policy.validate(self.k)

    # ------------------------------------------------------------ descriptors
    @property
    def m(self) -> int:
        """Number of sites."""
        return self.values.m

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DispersalGame(M={self.m}, k={self.k}, policy={self.policy.name!r})"

    # -------------------------------------------------------------- solutions
    @cached_property
    def _equilibrium(self) -> IFDResult:
        return ideal_free_distribution(self.values, self.k, self.policy)

    def equilibrium(self) -> IFDResult:
        """The unique symmetric Nash equilibrium (the IFD) of the instance."""
        return self._equilibrium

    @cached_property
    def _optimum(self):
        return optimal_coverage_strategy(self.values, self.k)

    def optimal_strategy(self) -> Strategy:
        """The coverage-optimal symmetric strategy (``sigma_star`` of the values)."""
        return self._optimum.strategy

    def optimal_coverage(self) -> float:
        """``Cover(p_star)`` — the best symmetric coverage of the instance."""
        return self._optimum.coverage

    # ------------------------------------------------------------- quantities
    def equilibrium_coverage(self) -> float:
        """Coverage achieved at the symmetric equilibrium of ``policy``."""
        return coverage(self.values, self._equilibrium.strategy, self.k)

    def equilibrium_payoff(self) -> float:
        """Expected payoff of each player at the symmetric equilibrium."""
        return self._equilibrium.value

    def price_of_anarchy(self) -> float:
        """Per-instance symmetric price of anarchy ``Cover(p_star) / Cover(IFD)``."""
        eq_cover = self.equilibrium_coverage()
        return float(self.optimal_coverage() / eq_cover) if eq_cover > 0 else float("inf")

    def coverage_of(self, strategy: Strategy) -> float:
        """Coverage of an arbitrary symmetric strategy on this instance."""
        return coverage(self.values, strategy, self.k)

    def site_values_at(self, strategy: Strategy) -> np.ndarray:
        """``nu_p(x)`` (Eq. 2) against ``k - 1`` opponents playing ``strategy``."""
        return site_values(self.values, strategy, self.k, self.policy)

    def exploitability_of(self, strategy: Strategy) -> float:
        """Best-response gain available against the symmetric profile ``strategy``."""
        return exploitability(self.values, strategy, self.k, self.policy)

    def full_coordination_coverage(self) -> float:
        """Coverage of the best coordinated assignment (top-``k`` sites)."""
        return full_coordination_coverage(self.values, self.k)

    def welfare_optimum(self, **kwargs) -> WelfareOptimum:
        """The symmetric strategy maximising the players' total payoff."""
        return welfare_optimal_strategy(self.values, self.k, self.policy, **kwargs)

    # ------------------------------------------------------------- evaluation
    def ess_audit(self, **kwargs) -> ESSReport:
        """Audit the equilibrium strategy for evolutionary stability."""
        return ess_report(self.values, self._equilibrium.strategy, self.k, self.policy, **kwargs)

    def simulate(self, n_trials: int, strategy: Strategy | None = None, rng=None):
        """Monte-Carlo simulation of ``n_trials`` one-shot games.

        Defaults to simulating the equilibrium strategy.  Returns the
        :class:`~repro.simulation.engine.SimulationResult` of the run.
        """
        from repro.simulation.engine import DispersalSimulator

        chosen = strategy if strategy is not None else self._equilibrium.strategy
        return DispersalSimulator(self.values, self.k, self.policy).run(chosen, n_trials, rng)

    def with_policy(self, policy: CongestionPolicy) -> "DispersalGame":
        """A copy of this instance under a different congestion policy."""
        return DispersalGame(self.values, self.k, policy)

    def with_players(self, k: int) -> "DispersalGame":
        """A copy of this instance with a different number of players."""
        return DispersalGame(self.values, k, self.policy)
