"""Individual welfare of symmetric strategies and its maximisation.

The *welfare* of a symmetric strategy ``p`` under a reward policy is the
expected total payoff collected by the ``k`` players::

    Welfare(p) = k * sum_x p(x) * nu_p(x)

Figure 1 of the paper plots, next to the ESS coverage and the optimal
coverage, the coverage of the symmetric strategy that maximises the players'
individual payoffs (equivalently the welfare, since players are symmetric).
This module computes that strategy.

For two sites the problem is one-dimensional and solved by dense grid search
with local refinement; the general case uses multi-start projected gradient
ascent (welfare is generally non-concave, so several restarts are used).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import coverage
from repro.core.payoffs import site_values
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.numerics import simplex_projection
from repro.utils.validation import check_positive_integer

__all__ = ["WelfareOptimum", "expected_welfare", "individual_payoff", "welfare_optimal_strategy"]


@dataclass(frozen=True)
class WelfareOptimum:
    """A welfare-maximising symmetric strategy with its welfare and coverage."""

    strategy: Strategy
    welfare: float
    individual_payoff: float
    coverage: float
    method: str


def individual_payoff(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Expected payoff of a single player in the symmetric profile ``strategy``."""
    k = check_positive_integer(k, "k")
    p = strategy.as_array() if isinstance(strategy, Strategy) else np.asarray(strategy, dtype=float)
    nu = site_values(values, p, k, policy)
    return float(np.dot(p, nu))


def expected_welfare(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Total expected payoff of all ``k`` players: ``k *`` :func:`individual_payoff`."""
    return k * individual_payoff(values, strategy, k, policy)


def _welfare_of_vector(
    f: np.ndarray, p: np.ndarray, k: int, policy: CongestionPolicy
) -> float:
    nu = site_values(f, p, k, policy)
    return float(k * np.dot(p, nu))


def _two_site_grid_search(
    f: np.ndarray, k: int, policy: CongestionPolicy, grid_points: int
) -> np.ndarray:
    """Dense 1-D grid search (with refinement) for ``M = 2`` instances."""
    def welfare_of_p1(p1: np.ndarray) -> np.ndarray:
        out = np.empty(p1.size)
        for i, q in enumerate(p1):
            vec = np.array([q, 1.0 - q])
            out[i] = _welfare_of_vector(f, vec, k, policy)
        return out

    grid = np.linspace(0.0, 1.0, grid_points)
    values_on_grid = welfare_of_p1(grid)
    best = int(np.argmax(values_on_grid))
    lo = grid[max(best - 1, 0)]
    hi = grid[min(best + 1, grid_points - 1)]
    fine = np.linspace(lo, hi, grid_points)
    fine_values = welfare_of_p1(fine)
    best_fine = int(np.argmax(fine_values))
    p1 = float(fine[best_fine])
    return np.array([p1, 1.0 - p1])


def welfare_optimal_strategy(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    grid_points: int = 2001,
    restarts: int = 8,
    max_iter: int = 3000,
    step_size: float = 0.05,
    rng: np.random.Generator | int | None = 0,
) -> WelfareOptimum:
    """Find the symmetric strategy maximising the players' expected payoff.

    Parameters
    ----------
    values, k, policy:
        Game instance.
    grid_points:
        Resolution of the 1-D grid search used for two-site instances.
    restarts, max_iter, step_size:
        Parameters of the multi-start projected gradient ascent used for
        ``M > 2`` (welfare is not concave in general, hence the restarts).
    rng:
        Seed / generator for the random restarts.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    policy.validate(k)
    m = f.size

    if m == 1:
        strategy = Strategy.point_mass(1, 0)
        welfare = _welfare_of_vector(f, strategy.as_array(), k, policy)
        return WelfareOptimum(strategy, welfare, welfare / k, coverage(f, strategy, k), "trivial")

    if m == 2:
        p = _two_site_grid_search(f, k, policy, grid_points)
        strategy = Strategy(p)
        welfare = _welfare_of_vector(f, p, k, policy)
        return WelfareOptimum(
            strategy, welfare, welfare / k, coverage(f, strategy, k), "grid-search"
        )

    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    candidates: list[np.ndarray] = [np.full(m, 1.0 / m), f / f.sum()]
    candidates.extend(generator.dirichlet(np.ones(m)) for _ in range(restarts))

    def numeric_gradient(p: np.ndarray, h: float = 1e-6) -> np.ndarray:
        base = _welfare_of_vector(f, p, k, policy)
        grad = np.empty(m)
        for i in range(m):
            bumped = p.copy()
            bumped[i] += h
            grad[i] = (_welfare_of_vector(f, bumped / bumped.sum(), k, policy) - base) / h
        return grad

    best_vec: np.ndarray | None = None
    best_welfare = -np.inf
    for start in candidates:
        p = start.copy()
        current = _welfare_of_vector(f, p, k, policy)
        for _ in range(max_iter):
            grad = numeric_gradient(p)
            proposal = simplex_projection(p + step_size * grad)
            value = _welfare_of_vector(f, proposal, k, policy)
            if value <= current + 1e-14:
                break
            p, current = proposal, value
        if current > best_welfare:
            best_welfare, best_vec = current, p

    assert best_vec is not None
    strategy = Strategy(best_vec)
    return WelfareOptimum(
        strategy,
        best_welfare,
        best_welfare / k,
        coverage(f, strategy, k),
        "projected-gradient",
    )
