"""Core model of the dispersal game: values, strategies, policies, equilibria.

This subpackage contains the paper's primary contribution — the dispersal
game, its congestion reward policies, the Ideal Free Distribution, the
closed-form ``sigma_star``, coverage/welfare optimisation, ESS machinery, and
the symmetric price of anarchy.
"""

from repro.core.values import SiteValues
from repro.core.strategy import Strategy
from repro.core.game import DispersalGame
from repro.core.policies import (
    AggressivePolicy,
    CallablePolicy,
    CongestionPolicy,
    ConstantPolicy,
    CooperativeSharingPolicy,
    ExclusivePolicy,
    ExponentialPolicy,
    PowerLawPolicy,
    SharingPolicy,
    TabulatedPolicy,
    TwoLevelPolicy,
)
from repro.core.coverage import (
    coverage,
    coverage_gradient,
    expected_sites_visited,
    full_coordination_coverage,
    missed_value,
    site_coverage_probabilities,
)
from repro.core.payoffs import (
    best_response_sites,
    best_response_value,
    exploitability,
    expected_payoff,
    mixture_payoff,
    mixture_payoff_expanded,
    payoff_against_groups,
    site_values,
)
from repro.core.sigma_star import SigmaStarResult, sigma_star, support_size
from repro.core.ifd import IFDReport, IFDResult, ideal_free_distribution, verify_ifd
from repro.core.optimal_coverage import (
    CoverageOptimum,
    maximize_coverage_projected_gradient,
    maximize_coverage_waterfilling,
    observation1_holds,
    observation1_lower_bound,
    optimal_coverage,
    optimal_coverage_strategy,
)
from repro.core.welfare import (
    WelfareOptimum,
    expected_welfare,
    individual_payoff,
    welfare_optimal_strategy,
)
from repro.core.ess import (
    ESSComparison,
    ESSReport,
    equilibrium_payoff,
    ess_conditions_against,
    ess_report,
    invasion_barrier,
    is_symmetric_nash,
)
from repro.core.equilibrium import (
    EquilibriumReport,
    count_pure_equilibria,
    pure_equilibrium_occupancies,
    symmetric_equilibrium,
    verify_symmetric_equilibrium,
)
from repro.core.spoa import (
    SPoAInstance,
    adversarial_values,
    spoa_instance,
    spoa_lower_bound_certificate,
    spoa_search,
)

__all__ = [
    # values / strategies / facade
    "SiteValues",
    "Strategy",
    "DispersalGame",
    # policies
    "CongestionPolicy",
    "ExclusivePolicy",
    "SharingPolicy",
    "ConstantPolicy",
    "TwoLevelPolicy",
    "PowerLawPolicy",
    "ExponentialPolicy",
    "AggressivePolicy",
    "CooperativeSharingPolicy",
    "TabulatedPolicy",
    "CallablePolicy",
    # coverage
    "coverage",
    "missed_value",
    "coverage_gradient",
    "site_coverage_probabilities",
    "expected_sites_visited",
    "full_coordination_coverage",
    # payoffs
    "site_values",
    "expected_payoff",
    "payoff_against_groups",
    "mixture_payoff",
    "mixture_payoff_expanded",
    "best_response_value",
    "best_response_sites",
    "exploitability",
    # sigma_star / ifd
    "SigmaStarResult",
    "sigma_star",
    "support_size",
    "IFDResult",
    "IFDReport",
    "ideal_free_distribution",
    "verify_ifd",
    # optimisation
    "CoverageOptimum",
    "optimal_coverage",
    "optimal_coverage_strategy",
    "maximize_coverage_waterfilling",
    "maximize_coverage_projected_gradient",
    "observation1_lower_bound",
    "observation1_holds",
    "WelfareOptimum",
    "expected_welfare",
    "individual_payoff",
    "welfare_optimal_strategy",
    # ess / equilibrium
    "ESSComparison",
    "ESSReport",
    "ess_conditions_against",
    "ess_report",
    "invasion_barrier",
    "is_symmetric_nash",
    "equilibrium_payoff",
    "EquilibriumReport",
    "symmetric_equilibrium",
    "verify_symmetric_equilibrium",
    "pure_equilibrium_occupancies",
    "count_pure_equilibria",
    # spoa
    "SPoAInstance",
    "spoa_instance",
    "spoa_search",
    "adversarial_values",
    "spoa_lower_bound_certificate",
]
