"""Symmetric strategies: probability distributions over sites.

A *strategy* in the dispersal game is a probability distribution ``p`` over
the ``M`` sites; a *symmetric strategy profile* has every player drawing its
site independently from the same ``p``.  :class:`Strategy` wraps the vector,
validates it, and provides the handful of operations the rest of the library
needs (support, mixing, sampling, distances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.sampling import inverse_cdf_sample, strategy_cdf
from repro.utils.validation import check_positive_integer, check_probability, check_probability_vector

__all__ = ["Strategy"]


@dataclass(frozen=True)
class Strategy:
    """Immutable probability distribution over ``M`` sites.

    Parameters
    ----------
    probabilities:
        Non-negative vector summing to one (up to a small tolerance; it is
        renormalised exactly).
    """

    probabilities: np.ndarray

    def __post_init__(self) -> None:
        arr = check_probability_vector(self.probabilities, "probabilities", normalize=False)
        arr = arr / arr.sum()  # remove the residual tolerance-level error
        object.__setattr__(self, "probabilities", np.ascontiguousarray(arr))
        self.probabilities.setflags(write=False)

    # ----------------------------------------------------------------- basics
    @classmethod
    def from_probabilities(
        cls, probabilities: Sequence[float] | np.ndarray, *, normalize: bool = False
    ) -> "Strategy":
        """Build a strategy, optionally renormalising an unnormalised weight vector."""
        arr = np.asarray(probabilities, dtype=float)
        if normalize:
            arr = check_probability_vector(arr, "probabilities", normalize=True)
        return cls(arr)

    @property
    def m(self) -> int:
        """Number of sites."""
        return int(self.probabilities.size)

    def as_array(self) -> np.ndarray:
        """Return the underlying (read-only) probability vector."""
        return self.probabilities

    def __len__(self) -> int:
        return self.m

    def __getitem__(self, index):
        return self.probabilities[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Strategy):
            return NotImplemented
        return self.probabilities.shape == other.probabilities.shape and bool(
            np.allclose(self.probabilities, other.probabilities, atol=1e-12)
        )

    def __hash__(self) -> int:
        return hash(np.round(self.probabilities, 12).tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        head = ", ".join(f"{v:.4g}" for v in self.probabilities[:6])
        suffix = ", ..." if self.m > 6 else ""
        return f"Strategy(M={self.m}, p=[{head}{suffix}])"

    # ---------------------------------------------------------------- queries
    @property
    def support(self) -> np.ndarray:
        """Indices (0-based) of sites explored with positive probability."""
        return np.nonzero(self.probabilities > 0)[0]

    @property
    def support_size(self) -> int:
        """Number of sites explored with positive probability."""
        return int(np.count_nonzero(self.probabilities > 0))

    def has_prefix_support(self, atol: float = 1e-12) -> bool:
        """``True`` when the support is a prefix ``{0, ..., W-1}`` of the site indices."""
        positive = self.probabilities > atol
        if not positive.any():
            return False
        last = int(np.nonzero(positive)[0][-1])
        return bool(np.all(positive[: last + 1]))

    def entropy(self) -> float:
        """Shannon entropy (in nats) of the distribution."""
        p = self.probabilities[self.probabilities > 0]
        return float(-(p * np.log(p)).sum())

    def total_variation(self, other: "Strategy") -> float:
        """Total-variation distance to ``other`` (must be over the same number of sites)."""
        self._check_compatible(other)
        return float(0.5 * np.abs(self.probabilities - other.probabilities).sum())

    def l2_distance(self, other: "Strategy") -> float:
        """Euclidean distance between the two probability vectors."""
        self._check_compatible(other)
        return float(np.linalg.norm(self.probabilities - other.probabilities))

    def _check_compatible(self, other: "Strategy") -> None:
        if self.m != other.m:
            raise ValueError(
                f"strategies are over different numbers of sites ({self.m} vs {other.m})"
            )

    # ------------------------------------------------------------- operations
    def mix(self, other: "Strategy", epsilon: float) -> "Strategy":
        """Return the population mixture ``(1 - epsilon) * self + epsilon * other``.

        This is the distribution of a single opponent drawn from a population
        in which a fraction ``epsilon`` are mutants playing ``other`` (Eq. 3 of
        the paper reduces to matching against this mixture because co-visitor
        counts only depend on each opponent's marginal site distribution).
        """
        self._check_compatible(other)
        epsilon = check_probability(epsilon, "epsilon")
        return Strategy((1.0 - epsilon) * self.probabilities + epsilon * other.probabilities)

    def restricted(self, support: Sequence[int]) -> "Strategy":
        """Condition the strategy on a subset of sites (renormalising)."""
        mask = np.zeros(self.m, dtype=bool)
        mask[np.asarray(support, dtype=int)] = True
        masked = np.where(mask, self.probabilities, 0.0)
        if masked.sum() <= 0:
            raise ValueError("restriction removes all probability mass")
        return Strategy(masked / masked.sum())

    def perturbed(
        self, rng: np.random.Generator | int | None, scale: float = 0.05
    ) -> "Strategy":
        """Return a nearby strategy (Dirichlet-style jitter), useful for mutant generation."""
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        noise = generator.dirichlet(np.ones(self.m))
        mixed = (1.0 - scale) * self.probabilities + scale * noise
        return Strategy(mixed / mixed.sum())

    def sample_sites(
        self, k: int, n_trials: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw site choices for ``k`` players over ``n_trials`` independent games.

        Returns an ``(n_trials, k)`` integer array of 0-based site indices,
        drawn with the shared batched inverse-CDF sampler.
        """
        k = check_positive_integer(k, "k")
        n_trials = check_positive_integer(n_trials, "n_trials")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return inverse_cdf_sample(strategy_cdf(self.probabilities), (n_trials, k), generator)

    # ------------------------------------------------------------ constructors
    @staticmethod
    def uniform(m: int) -> "Strategy":
        """Uniform distribution over ``m`` sites."""
        m = check_positive_integer(m, "m")
        return Strategy(np.full(m, 1.0 / m))

    @staticmethod
    def uniform_over_top(m: int, k: int) -> "Strategy":
        """The strategy ``p_hat`` of Observation 1: uniform over the ``k`` best sites."""
        m = check_positive_integer(m, "m")
        k = check_positive_integer(k, "k")
        width = min(k, m)
        probs = np.zeros(m)
        probs[:width] = 1.0 / width
        return Strategy(probs)

    @staticmethod
    def point_mass(m: int, site: int) -> "Strategy":
        """Pure strategy selecting ``site`` (0-based) with probability one."""
        m = check_positive_integer(m, "m")
        if site < 0 or site >= m:
            raise ValueError(f"site index {site} out of range for M={m}")
        probs = np.zeros(m)
        probs[site] = 1.0
        return Strategy(probs)

    @staticmethod
    def proportional(weights: Sequence[float] | np.ndarray) -> "Strategy":
        """Strategy proportional to a non-negative weight vector (e.g. ``f`` itself)."""
        return Strategy.from_probabilities(np.asarray(weights, dtype=float), normalize=True)

    @staticmethod
    def random(
        m: int, rng: np.random.Generator | int | None = None, *, concentration: float = 1.0
    ) -> "Strategy":
        """Random strategy drawn from a symmetric Dirichlet distribution."""
        m = check_positive_integer(m, "m")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return Strategy(generator.dirichlet(np.full(m, concentration)))
