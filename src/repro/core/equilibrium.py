"""Equilibrium tooling: best responses, exploitability, and pure equilibria.

The paper restricts attention to *symmetric* (mixed) equilibria — the IFD —
but also points out that the game has exponentially many pure, non-symmetric
equilibria that require coordination to reach.  For small instances this
module enumerates them, which makes that observation concrete and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement
from typing import Iterator

import numpy as np

from repro.core.ifd import IFDResult, ideal_free_distribution
from repro.core.payoffs import best_response_sites, exploitability, site_values
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.validation import check_positive_integer

__all__ = [
    "EquilibriumReport",
    "symmetric_equilibrium",
    "verify_symmetric_equilibrium",
    "pure_equilibrium_occupancies",
    "count_pure_equilibria",
]


@dataclass(frozen=True)
class EquilibriumReport:
    """Diagnostics of a candidate symmetric equilibrium."""

    is_equilibrium: bool
    exploitability: float
    best_response_sites: tuple[int, ...]
    support_size: int
    equilibrium_payoff: float


def symmetric_equilibrium(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    **solver_kwargs,
) -> IFDResult:
    """The (unique) symmetric Nash equilibrium — a thin wrapper around the IFD solver."""
    return ideal_free_distribution(values, k, policy, **solver_kwargs)


def verify_symmetric_equilibrium(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    atol: float = 1e-8,
) -> EquilibriumReport:
    """Check whether ``strategy`` is a symmetric Nash equilibrium of the game."""
    k = check_positive_integer(k, "k")
    f = values_array(values)
    gap = exploitability(f, strategy, k, policy)
    nu = site_values(f, strategy, k, policy)
    payoff = float(np.dot(strategy.as_array(), nu))
    return EquilibriumReport(
        is_equilibrium=bool(gap <= atol),
        exploitability=float(gap),
        best_response_sites=tuple(int(i) for i in best_response_sites(f, strategy, k, policy)),
        support_size=strategy.support_size,
        equilibrium_payoff=payoff,
    )


def _occupancy_vectors(m: int, k: int) -> Iterator[np.ndarray]:
    """Yield every occupancy vector (n_1, ..., n_M) with sum k (multisets of sites)."""
    for combo in combinations_with_replacement(range(m), k):
        occupancy = np.zeros(m, dtype=int)
        for site in combo:
            occupancy[site] += 1
        yield occupancy


def pure_equilibrium_occupancies(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    atol: float = 1e-12,
) -> list[np.ndarray]:
    """Enumerate occupancy vectors of pure Nash equilibria (small instances only).

    A pure profile is described (up to player identities) by how many players
    occupy each site.  It is a Nash equilibrium when no occupant of any site
    ``x`` prefers to move to another site ``y``:
    ``f(x) * C(n_x) >= f(y) * C(n_y + 1)`` for all occupied ``x`` and all ``y``.

    The enumeration is ``O(C(M + k - 1, k))`` and intended for the small
    instances used to illustrate the paper's remark that pure equilibria are
    numerous; it raises for instances that would be too large.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    m = f.size
    from math import comb

    if comb(m + k - 1, k) > 2_000_000:
        raise ValueError("instance too large for exhaustive pure-equilibrium enumeration")

    c_table = policy.table(k + 1)  # need C up to k+1 occupants after a move... C(n_y + 1) <= C(k)
    equilibria: list[np.ndarray] = []
    for occupancy in _occupancy_vectors(m, k):
        occupied = occupancy > 0
        current = f * np.where(occupied, c_table[np.maximum(occupancy, 1) - 1], np.inf)
        # Payoff a mover would get at each destination (occupancy there + 1).
        after_move = f * c_table[np.minimum(occupancy + 1, k) - 1]
        # For each occupied origin x, the best alternative must not beat staying.
        best_alternative = np.empty(m)
        for x in range(m):
            if not occupied[x]:
                continue
            others = after_move.copy()
            others[x] = -np.inf  # moving to the same site is not a deviation
            best_alternative[x] = others.max()
        stable = True
        for x in range(m):
            if occupied[x] and current[x] < best_alternative[x] - atol:
                stable = False
                break
        if stable:
            equilibria.append(occupancy)
    return equilibria


def count_pure_equilibria(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> int:
    """Number of pure Nash equilibria counted as occupancy vectors (player-anonymous)."""
    return len(pure_equilibrium_occupancies(values, k, policy))
