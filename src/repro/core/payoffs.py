"""Expected payoffs in the dispersal game.

This module implements the payoff calculus of Sections 1.1-1.4 of the paper:

* ``nu_p(x)`` — the *value* of site ``x`` against ``k - 1`` opponents playing
  ``p`` (Eq. 2): the expected reward of a focal player that commits to ``x``.
* ``E(rho; sigma^l, pi^(k-l-1))`` — the expected payoff of a focal player
  playing ``rho`` against ``l`` opponents playing ``sigma`` and ``k - l - 1``
  opponents playing ``pi`` (the multi-population payoff of the ESS
  characterisation, Section 1.4).
* ``U[rho; (1 - eps) sigma + eps pi]`` — the payoff against ``k - 1``
  opponents drawn from an infinite population with a fraction ``eps`` of
  mutants (Eq. 3).

Everything is computed exactly (binomial/convolution expansions), vectorised
over sites.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import strategy_array, values_array
from repro.utils.numerics import binomial_coefficients, binomial_pmf_matrix
from repro.utils.validation import check_positive_integer, check_probability

__all__ = [
    "occupancy_congestion_factor",
    "site_values",
    "expected_payoff",
    "payoff_against_groups",
    "mixture_payoff",
    "mixture_payoff_expanded",
    "best_response_value",
    "best_response_sites",
    "exploitability",
]


def occupancy_congestion_factor(
    policy: CongestionPolicy,
    opponent_probabilities: np.ndarray,
    n_opponents: int,
) -> np.ndarray:
    """Expected congestion factor ``E[C(1 + Binomial(n_opponents, q))]`` per site.

    Parameters
    ----------
    policy:
        Congestion policy supplying ``C``.
    opponent_probabilities:
        Per-site probability ``q`` that a single opponent selects the site.
    n_opponents:
        Number of independent opponents.

    Returns
    -------
    numpy.ndarray
        One value per site; multiplying by ``f(x)`` yields ``nu(x)``.
    """
    q = np.asarray(opponent_probabilities, dtype=float)
    if n_opponents < 0:
        raise ValueError("n_opponents must be non-negative")
    if n_opponents == 0:
        return np.full(q.shape, float(policy.congestion(1)))
    pmf = binomial_pmf_matrix(n_opponents, q)  # (M, n_opponents + 1)
    c_table = policy.table(n_opponents + 1)  # C(1), ..., C(n_opponents + 1)
    return pmf @ c_table


def site_values(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> np.ndarray:
    """The value ``nu_p(x)`` of every site against ``k - 1`` opponents playing ``strategy``.

    This is Eq. (2) of the paper: the expected payoff of a focal player that
    deterministically selects site ``x`` while each of the ``k - 1`` opponents
    independently selects a site according to ``strategy``.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    p = strategy_array(strategy)
    if f.shape != p.shape:
        raise ValueError("values and strategy must cover the same number of sites")
    return f * occupancy_congestion_factor(policy, p, k - 1)


def expected_payoff(
    values: SiteValues | np.ndarray,
    focal: Strategy | np.ndarray,
    opponents: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Expected payoff ``E(focal; opponents^(k-1))`` of a focal mixed strategy.

    The focal player draws its site from ``focal`` and each of the ``k - 1``
    opponents independently from ``opponents``.
    """
    rho = strategy_array(focal)
    nu = site_values(values, opponents, k, policy)
    if rho.shape != nu.shape:
        raise ValueError("focal strategy and values must cover the same number of sites")
    return float(np.dot(rho, nu))


def payoff_against_groups(
    values: SiteValues | np.ndarray,
    focal: Strategy | np.ndarray,
    groups: Sequence[tuple[Strategy | np.ndarray, int]],
    policy: CongestionPolicy,
) -> float:
    """Expected payoff ``E(focal; sigma_1^{n_1}, sigma_2^{n_2}, ...)``.

    ``groups`` is a sequence of ``(strategy, count)`` pairs describing the
    opponents.  The number of co-visitors at a site is the sum of independent
    binomials, whose distribution is computed by convolving the per-group
    binomial laws.  With a single group this reduces to
    :func:`expected_payoff`; with two groups it is the
    ``E(rho; sigma^l, pi^(k-l-1))`` payoff of the ESS characterisation.
    """
    f = values_array(values)
    rho = strategy_array(focal)
    if f.shape != rho.shape:
        raise ValueError("focal strategy and values must cover the same number of sites")

    total_opponents = 0
    # occupancy_dist[x, j] = P[j opponents at site x]; start from "zero opponents".
    occupancy = np.ones((f.size, 1), dtype=float)
    for strategy, count in groups:
        count = int(count)
        if count < 0:
            raise ValueError("group sizes must be non-negative")
        if count == 0:
            continue
        q = strategy_array(strategy)
        if q.shape != f.shape:
            raise ValueError("every group strategy must cover the same number of sites")
        pmf = binomial_pmf_matrix(count, q)  # (M, count + 1)
        new = np.zeros((f.size, occupancy.shape[1] + count), dtype=float)
        # Convolve, site by site, but vectorised over sites for each shift.
        for j in range(pmf.shape[1]):
            new[:, j : j + occupancy.shape[1]] += pmf[:, j : j + 1] * occupancy
        occupancy = new
        total_opponents += count

    c_table = policy.table(total_opponents + 1)
    factors = occupancy @ c_table  # E[C(1 + #co-visitors)] per site
    return float(np.dot(rho, f * factors))


def mixture_payoff(
    values: SiteValues | np.ndarray,
    focal: Strategy | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    epsilon: float,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """The population payoff ``U[focal; (1 - eps) resident + eps mutant]`` (Eq. 3).

    Because a co-visitor's site choice only depends on its marginal law, the
    payoff against a random ``(1 - eps, eps)`` mixture of residents and
    mutants equals the payoff against ``k - 1`` opponents that each play the
    mixed strategy ``(1 - eps) * resident + eps * mutant``.
    """
    epsilon = check_probability(epsilon, "epsilon")
    k = check_positive_integer(k, "k")
    mixed = resident.mix(mutant, epsilon)
    return expected_payoff(values, focal, mixed, k, policy)


def mixture_payoff_expanded(
    values: SiteValues | np.ndarray,
    focal: Strategy | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    epsilon: float,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Literal evaluation of Eq. (3): binomial mixture over opponent compositions.

    ``U = sum_l C(k-1, l) (1-eps)^l eps^(k-1-l) E(focal; resident^l, mutant^(k-1-l))``.

    This is mathematically identical to :func:`mixture_payoff`; both are kept
    so tests can cross-validate the two derivations.
    """
    epsilon = check_probability(epsilon, "epsilon")
    k = check_positive_integer(k, "k")
    n = k - 1
    coeffs = binomial_coefficients(n)
    total = 0.0
    for ell in range(n + 1):
        weight = coeffs[ell] * (1.0 - epsilon) ** ell * epsilon ** (n - ell)
        if weight == 0.0:
            continue
        payoff = payoff_against_groups(
            values, focal, [(resident, ell), (mutant, n - ell)], policy
        )
        total += weight * payoff
    return float(total)


def best_response_value(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Highest achievable payoff of a unilateral deviator: ``max_x nu_p(x)``."""
    return float(np.max(site_values(values, strategy, k, policy)))


def best_response_sites(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    atol: float = 1e-10,
) -> np.ndarray:
    """0-based indices of the sites attaining the best-response value."""
    nu = site_values(values, strategy, k, policy)
    return np.nonzero(nu >= nu.max() - atol)[0]


def exploitability(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Gain available to a unilateral deviator from the symmetric profile ``strategy``.

    ``exploitability(p) = max_x nu_p(x) - sum_x p(x) nu_p(x)``.  It is zero
    exactly at a symmetric Nash equilibrium (the IFD) and positive otherwise.
    """
    nu = site_values(values, strategy, k, policy)
    p = strategy.as_array()
    return float(nu.max() - np.dot(p, nu))
