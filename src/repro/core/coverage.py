"""The coverage functional and its companions.

The group performance of a symmetric strategy ``p`` played by ``k`` players is
the *weighted coverage* (Eq. 1 of the paper)::

    Cover(p) = sum_x f(x) * (1 - (1 - p(x))**k)

Maximising coverage is equivalent to minimising the complementary "missed
value" ``T(p) = sum_x f(x) * (1 - p(x))**k`` used in the proof of Theorem 4.
This module provides both, their gradients, and a handful of related
quantities (expected number of distinct visited sites, per-site marginal
coverage gain).
"""

from __future__ import annotations

import numpy as np

from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = [
    "coverage",
    "missed_value",
    "coverage_gradient",
    "missed_value_gradient",
    "site_coverage_probabilities",
    "expected_sites_visited",
    "coverage_upper_bound",
    "full_coordination_coverage",
]


def _as_arrays(values: SiteValues | np.ndarray, strategy: Strategy | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    f = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)
    p = strategy.as_array() if isinstance(strategy, Strategy) else np.asarray(strategy, dtype=float)
    if f.shape != p.shape:
        raise ValueError(
            f"values and strategy must agree on the number of sites ({f.shape} vs {p.shape})"
        )
    return f, p


def site_coverage_probabilities(strategy: Strategy | np.ndarray, k: int) -> np.ndarray:
    """Per-site probability of being visited by at least one of ``k`` players.

    Returns the vector ``1 - (1 - p(x))**k``.
    """
    k = check_positive_integer(k, "k")
    p = strategy.as_array() if isinstance(strategy, Strategy) else np.asarray(strategy, dtype=float)
    return 1.0 - (1.0 - p) ** k


def coverage(values: SiteValues | np.ndarray, strategy: Strategy | np.ndarray, k: int) -> float:
    """Expected weighted coverage ``Cover(p)`` of ``k`` players using ``strategy``."""
    k = check_positive_integer(k, "k")
    f, p = _as_arrays(values, strategy)
    return float(np.dot(f, 1.0 - (1.0 - p) ** k))


def missed_value(values: SiteValues | np.ndarray, strategy: Strategy | np.ndarray, k: int) -> float:
    """The complementary quantity ``T(p) = sum_x f(x) * (1 - p(x))**k``.

    ``Cover(p) + T(p) = sum_x f(x)`` for every strategy, so minimising ``T``
    and maximising coverage are the same problem (used in the Theorem 4 proof).
    """
    k = check_positive_integer(k, "k")
    f, p = _as_arrays(values, strategy)
    return float(np.dot(f, (1.0 - p) ** k))


def coverage_gradient(
    values: SiteValues | np.ndarray, strategy: Strategy | np.ndarray, k: int
) -> np.ndarray:
    """Gradient of ``Cover`` with respect to the strategy vector.

    ``d Cover / d p(x) = k * f(x) * (1 - p(x))**(k-1)``.  On the support of a
    coverage-maximising strategy these partial derivatives are all equal
    (the KKT condition), which is exactly the IFD condition under the
    exclusive policy — the analytic heart of Theorem 4.
    """
    k = check_positive_integer(k, "k")
    f, p = _as_arrays(values, strategy)
    return k * f * (1.0 - p) ** (k - 1)


def missed_value_gradient(
    values: SiteValues | np.ndarray, strategy: Strategy | np.ndarray, k: int
) -> np.ndarray:
    """Gradient of ``T``; equal to ``-coverage_gradient``."""
    return -coverage_gradient(values, strategy, k)


def expected_sites_visited(strategy: Strategy | np.ndarray, k: int) -> float:
    """Expected number of distinct sites visited by ``k`` players (unweighted coverage)."""
    return float(site_coverage_probabilities(strategy, k).sum())


def coverage_upper_bound(values: SiteValues | np.ndarray) -> float:
    """Trivial upper bound: the sum of all site values (every site visited)."""
    f = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)
    return float(f.sum())


def full_coordination_coverage(values: SiteValues | np.ndarray, k: int) -> float:
    """Best coverage achievable with full coordination: the ``k`` most valuable sites.

    This is the benchmark of Observation 1; no symmetric (uncoordinated)
    strategy can beat it, and the optimal symmetric strategy recovers at least
    a ``(1 - 1/e)`` fraction of it.
    """
    k = check_positive_integer(k, "k")
    f = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)
    f_sorted = np.sort(f)[::-1]
    return float(f_sorted[: min(k, f_sorted.size)].sum())
