"""Numerical computation of the Ideal Free Distribution for any congestion policy.

The IFD (Fretwell & Lucas) is the distribution ``p`` for which every site in
the support yields the same expected payoff ``nu_p(x)`` and every other site
yields a strictly lower payoff.  For non-increasing reward policies it exists,
is unique, and is the only symmetric Nash equilibrium of the dispersal game
(Observation 2 of the paper).

For a congestion policy ``I(x, l) = f(x) * C(l)`` the site value factors as
``nu_p(x) = f(x) * g(p(x))`` where ``g(q) = E[C(1 + Binomial(k-1, q))]`` is a
non-increasing polynomial in ``q``.  The solver below exploits this structure
with a nested bisection (water-filling):

* inner: for a candidate equilibrium value ``v`` solve ``f(x) * g(q) = v`` for
  every site simultaneously (vectorised bisection over sites);
* outer: adjust ``v`` until the site probabilities sum to one.

The exclusive policy admits the closed form :func:`repro.core.sigma_star.sigma_star`,
which the solver automatically uses as a cross-checkable fast path when asked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.payoffs import occupancy_congestion_factor, site_values
from repro.core.policies import CongestionPolicy, ExclusivePolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.validation import check_positive_integer

__all__ = ["IFDResult", "IFDReport", "ideal_free_distribution", "verify_ifd"]


@dataclass(frozen=True)
class IFDResult:
    """Result of an IFD computation.

    Attributes
    ----------
    strategy:
        The ideal free distribution.
    value:
        Common expected payoff ``nu_p(x)`` on the support (the players'
        equilibrium payoff).
    support_size:
        Number of sites receiving positive probability.
    converged:
        Whether the nested bisection met its tolerance.
    iterations:
        Number of outer bisection iterations performed (0 for closed forms).
    """

    strategy: Strategy
    value: float
    support_size: int
    converged: bool
    iterations: int


@dataclass(frozen=True)
class IFDReport:
    """Diagnostic produced by :func:`verify_ifd`.

    ``is_ifd`` summarises the two IFD conditions: payoffs are equal (within
    ``atol``) on the support and no unexplored site pays more than the support
    value.
    """

    is_ifd: bool
    support_value_spread: float
    max_outside_advantage: float
    support_size: int
    value: float


def ideal_free_distribution(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    tol: float = 1e-12,
    max_outer_iter: int = 200,
    max_inner_iter: int = 80,
    use_closed_form: bool = True,
) -> IFDResult:
    """Compute the IFD (= unique symmetric Nash equilibrium) of the dispersal game.

    Parameters
    ----------
    values:
        Site values, non-increasing.
    k:
        Number of players.
    policy:
        Congestion policy (``C(1) = 1``, non-increasing).  The policy is
        validated for ``k`` players.
    tol:
        Relative tolerance of the outer bisection on the equilibrium value.
    max_outer_iter, max_inner_iter:
        Iteration caps of the nested bisection.
    use_closed_form:
        When the policy is the exclusive policy, use the paper's closed form
        ``sigma_star`` instead of the numerical solver.

    Notes
    -----
    * ``k = 1``: the single player's best response is the most valuable site.
    * If the congestion table is constant on ``{1, ..., k}`` (no congestion
      cost at all), the unique-IFD argument of Observation 2 does not apply;
      the solver returns the natural equilibrium in which players spread
      uniformly over the maximum-value sites.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    m = f.size
    policy.validate(k)

    if k == 1:
        return IFDResult(Strategy.point_mass(m, 0), float(f[0]), 1, True, 0)

    if use_closed_form and policy.is_exclusive(k):
        closed = sigma_star(f, k)
        return IFDResult(
            closed.strategy,
            closed.equilibrium_value,
            closed.support_size,
            True,
            0,
        )

    c_table = policy.table(k)
    if np.allclose(c_table, c_table[0], atol=1e-12):
        # No congestion cost: nu_p(x) = f(x) for every p, so equilibrium mass
        # concentrates on the maximum-value sites.
        top_mask = np.isclose(f, f[0], rtol=0.0, atol=1e-12)
        probs = np.where(top_mask, 1.0, 0.0)
        probs /= probs.sum()
        strategy = Strategy(probs)
        value = float(site_values(f, strategy, k, policy).max())
        return IFDResult(strategy, value, int(top_mask.sum()), True, 0)

    def g(q: np.ndarray) -> np.ndarray:
        return occupancy_congestion_factor(policy, q, k - 1)

    g_at_one = float(g(np.array([1.0]))[0])

    def site_probabilities(v: float) -> np.ndarray:
        """Solve f(x) * g(q_x) = v per site (clipped into [0, 1])."""
        q = np.zeros(m, dtype=float)
        # Sites with f(x) <= v are not worth visiting even when empty.
        active = f > v
        if not np.any(active):
            return q
        # Sites whose fully-congested payoff still exceeds v saturate at 1.
        saturated = active & (f * g_at_one >= v)
        q[saturated] = 1.0
        solve_mask = active & ~saturated
        if np.any(solve_mask):
            lo = np.zeros(int(solve_mask.sum()))
            hi = np.ones(int(solve_mask.sum()))
            f_sub = f[solve_mask]
            for _ in range(max_inner_iter):
                mid = 0.5 * (lo + hi)
                residual = f_sub * g(mid) - v  # decreasing in q
                go_right = residual > 0
                lo = np.where(go_right, mid, lo)
                hi = np.where(go_right, hi, mid)
            q[solve_mask] = 0.5 * (lo + hi)
        return q

    # Outer bisection on the equilibrium value v: sum of probabilities is
    # non-increasing in v; at v_high the sum is 0, at v_low it is M >= 1.
    v_high = float(f[0])
    v_low = float(min(f[-1] * g_at_one, f[0] * g_at_one, 0.0))
    if v_low == v_high:
        v_low = v_high - 1.0

    lo, hi = v_low, v_high
    iterations = 0
    for iterations in range(1, max_outer_iter + 1):
        mid = 0.5 * (lo + hi)
        total = site_probabilities(mid).sum()
        if total >= 1.0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, abs(hi)):
            break

    value = 0.5 * (lo + hi)
    probs = site_probabilities(value)
    total = probs.sum()
    converged = bool(np.isclose(total, 1.0, atol=1e-6))
    if total <= 0:
        raise RuntimeError("IFD solver failed: zero total probability mass")
    probs = probs / total
    strategy = Strategy(probs)
    # Report the realised equilibrium value from the constructed strategy,
    # which is more accurate than the bisection midpoint.
    nu = site_values(f, strategy, k, policy)
    support = strategy.as_array() > 1e-12
    realised_value = float(nu[support].mean()) if np.any(support) else float(nu.max())
    return IFDResult(strategy, realised_value, int(support.sum()), converged, iterations)


def verify_ifd(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    atol: float = 1e-7,
    support_atol: float = 1e-9,
) -> IFDReport:
    """Check the two IFD conditions for ``strategy`` and return a diagnostic report.

    Conditions (Section 1.3 of the paper):

    1. every site explored with positive probability yields the same payoff;
    2. every unexplored site yields at most that payoff.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    nu = site_values(f, strategy, k, policy)
    p = strategy.as_array()
    support = p > support_atol

    if not np.any(support):
        return IFDReport(False, np.inf, np.inf, 0, float("nan"))

    support_values = nu[support]
    value = float(support_values.mean())
    spread = float(support_values.max() - support_values.min())
    outside = nu[~support]
    max_outside_advantage = float((outside - value).max()) if outside.size else -np.inf
    is_ifd = spread <= atol and (outside.size == 0 or max_outside_advantage <= atol)
    return IFDReport(
        is_ifd=bool(is_ifd),
        support_value_spread=spread,
        max_outside_advantage=max_outside_advantage,
        support_size=int(support.sum()),
        value=value,
    )
