"""Congestion functions and reward policies.

A *reward policy* ``I(x, l)`` gives the payoff received by a player that
selected site ``x`` together with ``l - 1`` other players.  The paper's focus
is on *congestion* policies of the form ``I(x, l) = f(x) * C(l)`` with
``C(1) = 1`` and ``C`` non-increasing (Section 1.1).  This module implements
the congestion families discussed in the paper:

* :class:`ExclusivePolicy` — the "Judgment of Solomon" rule ``C_exc`` (full
  reward when alone, nothing on any collision); the paper's main object.
* :class:`SharingPolicy` — ``C_share(l) = 1/l`` (scramble competition).
* :class:`ConstantPolicy` — ``C ≡ 1`` (no congestion cost; SPoA ~ k).
* :class:`TwoLevelPolicy` — the one-parameter family ``C_c`` of Figure 1
  (``C_c(1) = 1``, ``C_c(l >= 2) = c``); ``c = 0`` is exclusive, ``c = 0.5``
  is sharing for two players, ``c < 0`` models aggression.
* :class:`PowerLawPolicy`, :class:`ExponentialPolicy` — smooth interpolations
  between no-congestion and hard competition, including cooperative regimes
  (``C(l) > 1/l``).
* :class:`AggressivePolicy` — negative payoff on every collision.
* :class:`TabulatedPolicy` — arbitrary user-supplied congestion table.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.utils.numerics import is_non_increasing
from repro.utils.validation import check_positive_integer

__all__ = [
    "CongestionPolicy",
    "ExclusivePolicy",
    "SharingPolicy",
    "ConstantPolicy",
    "TwoLevelPolicy",
    "PowerLawPolicy",
    "ExponentialPolicy",
    "AggressivePolicy",
    "CooperativeSharingPolicy",
    "TabulatedPolicy",
    "CallablePolicy",
]


class CongestionPolicy(abc.ABC):
    """Abstract congestion function ``C(l)`` with ``C(1) = 1`` and ``C`` non-increasing.

    Subclasses implement :meth:`congestion`; the base class provides the
    vectorised table, the reward map ``I(x, l) = f(x) * C(l)``, and validation
    helpers.  A policy does **not** depend on the total number of players
    ``k`` — only on how many players ended up on the same site — exactly as in
    the paper.
    """

    #: Human readable identifier used in reports and benchmark tables.
    name: str = "congestion"

    # ------------------------------------------------------------------ C(l)
    @abc.abstractmethod
    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        """Return ``C(l)`` for one or many occupancy counts ``l >= 1``."""

    def __call__(self, ell: np.ndarray | int) -> np.ndarray | float:
        return self.congestion(ell)

    def table(self, k: int) -> np.ndarray:
        """Return the vector ``[C(1), C(2), ..., C(k)]``."""
        k = check_positive_integer(k, "k")
        return np.asarray(self.congestion(np.arange(1, k + 1)), dtype=float)

    # --------------------------------------------------------------- rewards
    def reward(self, value: np.ndarray | float, ell: np.ndarray | int) -> np.ndarray | float:
        """Reward ``I(x, l) = f(x) * C(l)`` (broadcasts over both arguments)."""
        return np.asarray(value, dtype=float) * np.asarray(self.congestion(ell), dtype=float)

    # ------------------------------------------------------------ validation
    def validate(self, k: int, *, atol: float = 1e-9) -> None:
        """Check the congestion-policy axioms up to ``k`` players.

        Raises ``ValueError`` when ``C(1) != 1`` or ``C`` is not
        non-increasing on ``{1, ..., k}``.
        """
        tab = self.table(k)
        if not np.isclose(tab[0], 1.0, atol=atol):
            raise ValueError(f"{self.name}: C(1) must equal 1, got {tab[0]}")
        if not is_non_increasing(tab, atol=atol):
            raise ValueError(f"{self.name}: C must be non-increasing, got {tab}")

    def is_valid(self, k: int, *, atol: float = 1e-9) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(k, atol=atol)
        except ValueError:
            return False
        return True

    def is_exclusive(self, k: int, *, atol: float = 1e-12) -> bool:
        """``True`` when this policy coincides with ``C_exc`` on ``{1, ..., k}``."""
        tab = self.table(k)
        expected = np.zeros(k)
        expected[0] = 1.0
        return bool(np.allclose(tab, expected, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class ExclusivePolicy(CongestionPolicy):
    """The exclusive ("Judgment of Solomon") congestion function ``C_exc``.

    ``C(1) = 1`` and ``C(l) = 0`` for every ``l >= 2``: a site's reward is paid
    only to a player that explores it alone.  Under this policy the unique
    symmetric Nash equilibrium is the closed-form ``sigma_star`` and the
    symmetric price of anarchy is exactly 1 (Theorems 3-6 of the paper).
    """

    name = "exclusive"

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell)
        self._check_ell(arr)
        return np.where(arr == 1, 1.0, 0.0) if arr.ndim else float(arr == 1)

    @staticmethod
    def _check_ell(arr: np.ndarray) -> None:
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")


class SharingPolicy(CongestionPolicy):
    """The sharing congestion function ``C_share(l) = 1 / l`` (scramble competition)."""

    name = "sharing"

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell, dtype=float)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        return 1.0 / arr if arr.ndim else float(1.0 / arr)


class ConstantPolicy(CongestionPolicy):
    """No congestion cost: ``C(l) = 1`` for every ``l`` (each visitor gets the full value)."""

    name = "constant"

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell, dtype=float)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        return np.ones_like(arr) if arr.ndim else 1.0


class TwoLevelPolicy(CongestionPolicy):
    """The one-parameter family ``C_c`` used in Figure 1 of the paper.

    ``C_c(1) = 1`` and ``C_c(l) = c`` for every ``l >= 2``, with
    ``c <= 1``.  ``c = 0`` recovers the exclusive policy; for two players
    ``c = 0.5`` recovers the sharing policy; ``c < 0`` models aggressive
    collisions in which both parties are harmed.
    """

    name = "two-level"

    def __init__(self, collision_value: float):
        collision_value = float(collision_value)
        if collision_value > 1.0 + 1e-12:
            raise ValueError("collision_value must be <= 1 for C to be non-increasing")
        self.collision_value = collision_value

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        result = np.where(arr == 1, 1.0, self.collision_value)
        return result if arr.ndim else float(result)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TwoLevelPolicy(collision_value={self.collision_value!r})"


class PowerLawPolicy(CongestionPolicy):
    """Power-law congestion ``C(l) = l ** (-gamma)`` with ``gamma >= 0``.

    ``gamma = 0`` is the constant policy, ``gamma = 1`` the sharing policy,
    ``gamma < 1`` a cooperative regime (``C(l) > 1/l``), and ``gamma -> inf``
    approaches the exclusive policy.
    """

    name = "power-law"

    def __init__(self, gamma: float):
        gamma = float(gamma)
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell, dtype=float)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        result = arr ** (-self.gamma)
        return result if arr.ndim else float(result)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PowerLawPolicy(gamma={self.gamma!r})"


class ExponentialPolicy(CongestionPolicy):
    """Exponential congestion ``C(l) = exp(-beta * (l - 1))`` with ``beta >= 0``."""

    name = "exponential"

    def __init__(self, beta: float):
        beta = float(beta)
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = beta

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell, dtype=float)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        result = np.exp(-self.beta * (arr - 1.0))
        return result if arr.ndim else float(result)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExponentialPolicy(beta={self.beta!r})"


class AggressivePolicy(CongestionPolicy):
    """Aggressive congestion: colliding players pay a penalty proportional to ``f(x)``.

    ``C(1) = 1`` and ``C(l) = -penalty`` for ``l >= 2`` with ``penalty >= 0``.
    This is the regime the paper highlights as *more* competitive than the
    exclusive policy, yet yielding strictly worse coverage (Theorem 6).
    """

    name = "aggressive"

    def __init__(self, penalty: float):
        penalty = float(penalty)
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self.penalty = penalty

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        result = np.where(arr == 1, 1.0, -self.penalty)
        return result if arr.ndim else float(result)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AggressivePolicy(penalty={self.penalty!r})"


class CooperativeSharingPolicy(CongestionPolicy):
    """Cooperative sharing: ``C(l) = min(1, synergy / l)`` with ``synergy >= 1``.

    Each of ``l`` co-visitors receives more than its equal share (``C(l) >
    1/l``) whenever ``l > synergy`` does not yet bind, modelling benefits of
    joint exploitation (Section 1.1's cooperation discussion).
    """

    name = "cooperative-sharing"

    def __init__(self, synergy: float = 1.5):
        synergy = float(synergy)
        if synergy < 1.0:
            raise ValueError("synergy must be >= 1")
        self.synergy = synergy

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell, dtype=float)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        result = np.minimum(1.0, self.synergy / arr)
        return result if arr.ndim else float(result)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CooperativeSharingPolicy(synergy={self.synergy!r})"


class TabulatedPolicy(CongestionPolicy):
    """Congestion function defined by an explicit table ``[C(1), ..., C(L)]``.

    Occupancies beyond the table length reuse the last entry, so a table is a
    complete policy specification for any number of players.
    """

    name = "tabulated"

    def __init__(self, table: Sequence[float] | np.ndarray, *, validate: bool = True):
        arr = np.asarray(table, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("table must be a non-empty 1-D sequence")
        if validate:
            if not np.isclose(arr[0], 1.0):
                raise ValueError("table[0] = C(1) must equal 1")
            if not is_non_increasing(arr):
                raise ValueError("table must be non-increasing")
        self._table = arr.copy()
        self._table.setflags(write=False)

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        idx = np.minimum(arr - 1, self._table.size - 1)
        result = self._table[idx]
        return result if arr.ndim else float(result)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TabulatedPolicy({self._table.tolist()!r})"


class CallablePolicy(CongestionPolicy):
    """Adapter turning any scalar function ``C(l)`` into a :class:`CongestionPolicy`."""

    name = "callable"

    def __init__(self, func: Callable[[np.ndarray], np.ndarray], name: str = "callable"):
        self._func = func
        self.name = name

    def congestion(self, ell: np.ndarray | int) -> np.ndarray | float:
        arr = np.asarray(ell)
        if np.any(arr < 1):
            raise ValueError("occupancy count l must be >= 1")
        result = np.asarray(self._func(np.asarray(arr, dtype=float)), dtype=float)
        return result if np.asarray(ell).ndim else float(result)
