"""Coverage-optimal symmetric strategies (Theorem 4 and Observation 1).

Maximising ``Cover(p) = sum_x f(x) (1 - (1 - p(x))**k)`` over the probability
simplex is a smooth concave problem.  Its KKT conditions say that the partial
derivatives ``k f(x) (1 - p(x))**(k-1)`` are equal on the support and no larger
outside it — which is precisely the IFD condition of the exclusive policy.
The unique maximiser therefore *is* ``sigma_star`` (Theorem 4).

This module provides three independent routes to the maximiser so they can be
cross-checked:

* :func:`optimal_coverage_strategy` — the closed form (``sigma_star``);
* :func:`maximize_coverage_waterfilling` — direct water-filling on the KKT
  multiplier, derived without reference to the game;
* :func:`maximize_coverage_projected_gradient` — generic projected gradient
  ascent, useful as a sanity check and as a template for coverage variants not
  covered by the closed form.

It also exposes the Observation 1 quantities (full-coordination optimum and
its ``1 - 1/e`` lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import coverage, coverage_gradient, full_coordination_coverage
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.numerics import safe_power, simplex_projection
from repro.utils.validation import check_positive_integer

__all__ = [
    "CoverageOptimum",
    "optimal_coverage_strategy",
    "optimal_coverage",
    "maximize_coverage_waterfilling",
    "maximize_coverage_projected_gradient",
    "observation1_lower_bound",
    "observation1_holds",
]


@dataclass(frozen=True)
class CoverageOptimum:
    """A coverage-maximising symmetric strategy together with its coverage."""

    strategy: Strategy
    coverage: float
    method: str


def optimal_coverage_strategy(values: SiteValues | np.ndarray, k: int) -> CoverageOptimum:
    """The coverage-optimal symmetric strategy ``p_star`` (equal to ``sigma_star``)."""
    k = check_positive_integer(k, "k")
    result = sigma_star(values, k)
    return CoverageOptimum(
        strategy=result.strategy,
        coverage=coverage(values, result.strategy, k),
        method="closed-form",
    )


def optimal_coverage(values: SiteValues | np.ndarray, k: int) -> float:
    """``Cover(p_star)``: the best coverage achievable by any symmetric strategy."""
    return optimal_coverage_strategy(values, k).coverage


def maximize_coverage_waterfilling(
    values: SiteValues | np.ndarray,
    k: int,
    *,
    tol: float = 1e-14,
    max_iter: int = 200,
) -> CoverageOptimum:
    """Maximise coverage by water-filling on the KKT multiplier.

    The stationarity condition for the concave program is
    ``k f(x) (1 - p(x))**(k-1) = lambda`` on the support, i.e.
    ``p(x) = 1 - (lambda / (k f(x)))**(1/(k-1))`` clipped at zero.  The scalar
    ``lambda`` is found by bisection so that the probabilities sum to one.
    This derivation never mentions the game, so it provides an independent
    numerical witness for Theorem 4.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    m = f.size

    if k == 1:
        strategy = Strategy.point_mass(m, int(np.argmax(f)))
        return CoverageOptimum(strategy, coverage(f, strategy, 1), "waterfilling")

    exponent = 1.0 / (k - 1)

    def probabilities(lam: float) -> np.ndarray:
        ratio = safe_power(lam / (k * f), exponent)
        return np.clip(1.0 - ratio, 0.0, 1.0)

    lo, hi = 0.0, float(k * f.max())
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if probabilities(mid).sum() >= 1.0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, hi):
            break
    probs = probabilities(0.5 * (lo + hi))
    total = probs.sum()
    if total <= 0:
        raise RuntimeError("water-filling failed to allocate probability mass")
    strategy = Strategy(probs / total)
    return CoverageOptimum(strategy, coverage(f, strategy, k), "waterfilling")


def maximize_coverage_projected_gradient(
    values: SiteValues | np.ndarray,
    k: int,
    *,
    step_size: float | None = None,
    max_iter: int = 2000,
    tol: float = 1e-12,
    initial: Strategy | None = None,
) -> CoverageOptimum:
    """Maximise coverage by projected gradient ascent on the simplex.

    Coverage is concave in ``p``, so plain projected gradient ascent with a
    fixed step converges to the global optimum.  The step defaults to
    ``1 / (k * (k - 1) * max f)``, an upper bound on the Lipschitz constant of
    the gradient.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    m = f.size
    if k == 1:
        strategy = Strategy.point_mass(m, int(np.argmax(f)))
        return CoverageOptimum(strategy, coverage(f, strategy, 1), "projected-gradient")

    if step_size is None:
        lipschitz = k * (k - 1) * float(f.max())
        step_size = 1.0 / max(lipschitz, 1e-12)
    p = (initial.as_array() if initial is not None else np.full(m, 1.0 / m)).copy()
    previous = coverage(f, p, k)
    for _ in range(max_iter):
        grad = coverage_gradient(f, p, k)
        p = simplex_projection(p + step_size * grad)
        current = coverage(f, p, k)
        if abs(current - previous) <= tol * max(1.0, abs(current)):
            previous = current
            break
        previous = current
    strategy = Strategy(p)
    return CoverageOptimum(strategy, coverage(f, strategy, k), "projected-gradient")


def observation1_lower_bound(values: SiteValues | np.ndarray, k: int) -> float:
    """The Observation 1 lower bound ``(1 - 1/e) * sum_{x <= k} f(x)``."""
    return (1.0 - 1.0 / np.e) * full_coordination_coverage(values, k)


def observation1_holds(values: SiteValues | np.ndarray, k: int) -> bool:
    """Check Observation 1: ``Cover(p_star) > (1 - 1/e) * sum_{x <= k} f(x)``."""
    return optimal_coverage(values, k) > observation1_lower_bound(values, k)
