"""Site importance values ``f`` and generators for common value-function families.

The dispersal game of Collet & Korman (SPAA 2018) is parameterised by a
vector ``f(1) >= f(2) >= ... >= f(M) > 0`` of site values.  :class:`SiteValues`
wraps that vector, enforces the ordering convention of the paper (sites are
indexed in non-increasing value order) and provides the standard families used
throughout the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_in_range, check_positive_integer, check_value_vector

__all__ = ["SiteValues"]


@dataclass(frozen=True)
class SiteValues:
    """Immutable vector of site values sorted in non-increasing order.

    Parameters
    ----------
    values:
        Strictly positive site values.  Unless ``assume_sorted=True`` is passed
        to :meth:`from_values`, the constructor sorts them in non-increasing
        order, matching the paper's convention ``f(x) >= f(x + 1)``.

    Notes
    -----
    The class is hashable and frozen so instances can be reused as cache keys
    by the experiment harness.
    """

    values: np.ndarray

    # ----------------------------------------------------------------- basics
    def __post_init__(self) -> None:
        arr = check_value_vector(self.values, "values", require_positive=True)
        order = np.argsort(-arr, kind="stable")
        object.__setattr__(self, "values", np.ascontiguousarray(arr[order]))
        self.values.setflags(write=False)

    @classmethod
    def from_values(cls, values: Sequence[float] | np.ndarray) -> "SiteValues":
        """Build a :class:`SiteValues` from any positive sequence (sorted internally)."""
        return cls(np.asarray(values, dtype=float))

    @property
    def m(self) -> int:
        """Number of sites ``M``."""
        return int(self.values.size)

    @property
    def total(self) -> float:
        """Sum of all site values (the full-information coverage ceiling)."""
        return float(self.values.sum())

    def top(self, k: int) -> float:
        """Sum of the ``k`` most valuable sites (full-coordination optimum for ``k`` players)."""
        k = check_positive_integer(k, "k")
        return float(self.values[: min(k, self.m)].sum())

    def as_array(self) -> np.ndarray:
        """Return the underlying (read-only) NumPy array."""
        return self.values

    def __len__(self) -> int:
        return self.m

    def __getitem__(self, index):
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SiteValues):
            return NotImplemented
        return self.values.shape == other.values.shape and bool(
            np.allclose(self.values, other.values)
        )

    def __hash__(self) -> int:
        return hash(self.values.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        head = ", ".join(f"{v:.4g}" for v in self.values[:6])
        suffix = ", ..." if self.m > 6 else ""
        return f"SiteValues(M={self.m}, values=[{head}{suffix}])"

    # ------------------------------------------------------------- operations
    def normalized(self) -> "SiteValues":
        """Rescale so the most valuable site has value 1."""
        return SiteValues(self.values / self.values[0])

    def truncated(self, m: int) -> "SiteValues":
        """Keep only the ``m`` most valuable sites."""
        m = check_positive_integer(m, "m")
        if m > self.m:
            raise ValueError(f"cannot truncate to {m} sites, only {self.m} available")
        return SiteValues(self.values[:m])

    def scaled(self, factor: float) -> "SiteValues":
        """Multiply every value by ``factor > 0``."""
        factor = check_in_range(factor, "factor", lo=np.finfo(float).tiny)
        return SiteValues(self.values * factor)

    def with_values(self, mapping: Iterable[tuple[int, float]]) -> "SiteValues":
        """Return a copy where selected (0-based) indices take new positive values."""
        arr = self.values.copy()
        for index, value in mapping:
            if index < 0 or index >= self.m:
                raise IndexError(f"site index {index} out of range for M={self.m}")
            if value <= 0:
                raise ValueError("site values must be strictly positive")
            arr[index] = value
        return SiteValues(arr)

    def value_ratio(self) -> float:
        """Return ``f(M) / f(1)`` — how flat the value profile is (1 means uniform)."""
        return float(self.values[-1] / self.values[0])

    # ------------------------------------------------------------- generators
    @staticmethod
    def uniform(m: int, value: float = 1.0) -> "SiteValues":
        """``m`` sites of identical value."""
        m = check_positive_integer(m, "m")
        value = check_in_range(value, "value", lo=np.finfo(float).tiny)
        return SiteValues(np.full(m, value, dtype=float))

    @staticmethod
    def linear(m: int, high: float = 1.0, low: float = 0.1) -> "SiteValues":
        """Linearly decreasing values from ``high`` down to ``low``."""
        m = check_positive_integer(m, "m")
        high = check_in_range(high, "high", lo=np.finfo(float).tiny)
        low = check_in_range(low, "low", lo=np.finfo(float).tiny, hi=high)
        return SiteValues(np.linspace(high, low, m))

    @staticmethod
    def geometric(m: int, ratio: float = 0.9, first: float = 1.0) -> "SiteValues":
        """Geometrically decaying values ``first * ratio**(x-1)``."""
        m = check_positive_integer(m, "m")
        ratio = check_in_range(ratio, "ratio", lo=np.finfo(float).tiny, hi=1.0)
        first = check_in_range(first, "first", lo=np.finfo(float).tiny)
        return SiteValues(first * ratio ** np.arange(m, dtype=float))

    @staticmethod
    def zipf(m: int, exponent: float = 1.0, first: float = 1.0) -> "SiteValues":
        """Power-law (Zipf) values ``first / x**exponent``."""
        m = check_positive_integer(m, "m")
        exponent = check_in_range(exponent, "exponent", lo=0.0)
        first = check_in_range(first, "first", lo=np.finfo(float).tiny)
        return SiteValues(first / np.arange(1, m + 1, dtype=float) ** exponent)

    @staticmethod
    def exponential(m: int, rate: float = 0.1, first: float = 1.0) -> "SiteValues":
        """Exponentially decaying values ``first * exp(-rate * (x - 1))``."""
        m = check_positive_integer(m, "m")
        rate = check_in_range(rate, "rate", lo=0.0)
        first = check_in_range(first, "first", lo=np.finfo(float).tiny)
        return SiteValues(first * np.exp(-rate * np.arange(m, dtype=float)))

    @staticmethod
    def slowly_decreasing(m: int, k: int, first: float = 1.0) -> "SiteValues":
        """The adversarial family used in the proof of Theorem 6.

        A strictly decreasing profile whose ratio ``f(M)/f(1)`` stays above
        ``(1 - 1/(2k))^(k-1)``, which forces the exclusive-policy support to
        exceed ``2k`` sites (as in Section 4 of the paper).
        """
        m = check_positive_integer(m, "m")
        k = check_positive_integer(k, "k")
        first = check_in_range(first, "first", lo=np.finfo(float).tiny)
        if k == 1:
            floor_ratio = 0.9
        else:
            floor_ratio = (1.0 - 1.0 / (2.0 * k)) ** (k - 1)
        # Strictly decreasing, with f(M)/f(1) slightly above the floor.
        target = 0.5 * (1.0 + floor_ratio)
        ratios = np.linspace(1.0, target, m)
        return SiteValues(first * ratios)

    @staticmethod
    def random(
        m: int,
        rng: np.random.Generator | int | None = None,
        *,
        low: float = 0.05,
        high: float = 1.0,
    ) -> "SiteValues":
        """Random i.i.d. uniform values in ``[low, high]`` (sorted internally)."""
        m = check_positive_integer(m, "m")
        if high <= low or low <= 0:
            raise ValueError("need 0 < low < high")
        generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        return SiteValues(generator.uniform(low, high, size=m))

    @staticmethod
    def two_sites(second: float, first: float = 1.0) -> "SiteValues":
        """The two-site instances used by Figure 1 of the paper (``f = (1, second)``)."""
        first = check_in_range(first, "first", lo=np.finfo(float).tiny)
        second = check_in_range(second, "second", lo=np.finfo(float).tiny, hi=first)
        return SiteValues(np.array([first, second], dtype=float))
