"""Symmetric Price of Anarchy (SPoA) of congestion policies.

For a congestion function ``C`` and a value function ``f`` the paper defines::

    SPoA(C, f) = sup over symmetric Nash equilibria p of Cover(p_star) / Cover(p)
    SPoA(C)    = sup over f (and M) of SPoA(C, f)

Because the IFD is the *unique* symmetric Nash equilibrium whenever the
policy is non-increasing (Observation 2), the per-instance SPoA reduces to
``Cover(p_star) / Cover(IFD)``.

Headline facts reproduced here:

* ``SPoA(C_exc) = 1`` (Corollary 5) — per-instance ratios are always 1;
* ``SPoA(C) > 1`` for every congestion function ``C != C_exc`` (Theorem 6) —
  :func:`adversarial_values` constructs the slowly-decreasing value profile
  from the Section 4 proof that witnesses a ratio strictly above 1;
* ``SPoA(C_share) <= 2`` (via Kleinberg-Oren / Vetta) — randomized searches
  over instances never exceed 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import CongestionPolicy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = [
    "SPoAInstance",
    "spoa_instance",
    "spoa_search",
    "adversarial_values",
    "spoa_lower_bound_certificate",
]


@dataclass(frozen=True)
class SPoAInstance:
    """SPoA evaluated on one ``(f, k)`` instance."""

    ratio: float
    optimal_coverage: float
    equilibrium_coverage: float
    k: int
    m: int


def spoa_instance(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    **solver_kwargs,
) -> SPoAInstance:
    """``Cover(p_star) / Cover(IFD)`` for one instance (the per-instance SPoA)."""
    k = check_positive_integer(k, "k")
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
    best = optimal_coverage(f, k)
    equilibrium = ideal_free_distribution(f, k, policy, **solver_kwargs)
    eq_coverage = coverage(f, equilibrium.strategy, k)
    if eq_coverage <= 0:
        ratio = np.inf
    else:
        ratio = best / eq_coverage
    return SPoAInstance(
        ratio=float(ratio),
        optimal_coverage=float(best),
        equilibrium_coverage=float(eq_coverage),
        k=k,
        m=f.m,
    )


def spoa_search(
    policy: CongestionPolicy,
    *,
    k_values: Sequence[int] = (2, 3, 5, 8),
    m_values: Sequence[int] = (2, 5, 10, 25),
    n_random: int = 20,
    rng: np.random.Generator | int | None = 0,
    include_structured: bool = True,
) -> tuple[float, SPoAInstance]:
    """Randomised + structured search for the largest per-instance SPoA of ``policy``.

    Returns the maximum ratio found and the instance realising it.  This is a
    lower bound on ``SPoA(C)`` (the supremum over all value functions).
    """
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    best_ratio = -np.inf
    best_instance: SPoAInstance | None = None
    for k in k_values:
        for m in m_values:
            candidates: list[SiteValues] = []
            if include_structured:
                candidates.extend(
                    [
                        SiteValues.uniform(m),
                        SiteValues.linear(m),
                        SiteValues.geometric(m, ratio=0.8),
                        SiteValues.zipf(m, exponent=1.0),
                        SiteValues.slowly_decreasing(m, k),
                    ]
                )
            candidates.extend(SiteValues.random(m, generator) for _ in range(n_random))
            for values in candidates:
                instance = spoa_instance(values, k, policy)
                if instance.ratio > best_ratio:
                    best_ratio = instance.ratio
                    best_instance = instance
    assert best_instance is not None
    return float(best_ratio), best_instance


def adversarial_values(policy: CongestionPolicy, k: int, *, m: int | None = None) -> SiteValues:
    """The slowly-decreasing value profile used in the Theorem 6 proof.

    A strictly decreasing ``f`` with ``f(M)/f(1) > (1 - 1/(2k))**(k-1)`` forces
    the exclusive-policy support ``W`` to exceed ``2k`` sites.  On such a
    profile the IFD of any non-exclusive congestion function differs from
    ``sigma_star`` and therefore (by the uniqueness part of Theorem 4) covers
    strictly less.
    """
    k = check_positive_integer(k, "k")
    if m is None:
        m = max(4 * k, 8)
    return SiteValues.slowly_decreasing(m, k)


def spoa_lower_bound_certificate(
    policy: CongestionPolicy,
    k: int,
    *,
    m: int | None = None,
    **solver_kwargs,
) -> SPoAInstance:
    """Evaluate the per-instance SPoA on the Theorem 6 adversarial profile.

    For any congestion function other than the exclusive one, the returned
    ratio is a certificate that ``SPoA(C) > 1``.
    """
    values = adversarial_values(policy, k, m=m)
    return spoa_instance(values, k, policy, **solver_kwargs)
