"""The closed-form IFD under the exclusive policy: algorithm ``sigma_star``.

Section 2.1 of the paper derives the unique strategy satisfying the IFD
conditions under the exclusive reward policy ``I_exc(x, l) = f(x) * C_exc(l)``::

    sigma*(x) = 1 - alpha / f(x)**(1/(k-1))     for x <= W,   0 otherwise

    W     = largest y such that  sum_{x <= y} (1 - (f(y)/f(x))**(1/(k-1))) <= 1
    alpha = (W - 1) / sum_{x <= W} f(x)**(-1/(k-1))

``sigma_star`` is simultaneously

* the unique symmetric Nash equilibrium under the exclusive policy
  (Observation 2 + Claim 7),
* an evolutionary stable strategy (Theorem 3), and
* the unique maximiser of the coverage among **all** symmetric strategies
  (Theorem 4), which is what makes the exclusive policy's symmetric price of
  anarchy equal to one (Corollary 5).

It also coincides with the first round of the ``A*`` algorithm of Korman &
Rodeh for parallel Bayesian search (see :mod:`repro.search`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.numerics import safe_power
from repro.utils.validation import check_positive_integer

__all__ = ["SigmaStarResult", "sigma_star", "support_size", "normalization_constant"]

#: Numerical slack used when evaluating the support condition ``h(y) <= 1``.
_SUPPORT_ATOL = 1e-12


@dataclass(frozen=True)
class SigmaStarResult:
    """Closed-form description of ``sigma_star`` for one game instance.

    Attributes
    ----------
    strategy:
        The distribution ``sigma_star`` itself.
    support_size:
        The prefix length ``W`` of the support.
    alpha:
        The normalisation constant of the Pareto-like form.
    equilibrium_value:
        The common site value ``nu(x) = alpha**(k-1)`` on the support (the
        expected payoff of every player at equilibrium).
    k:
        Number of players the instance was solved for.
    """

    strategy: Strategy
    support_size: int
    alpha: float
    equilibrium_value: float
    k: int

    @property
    def probabilities(self) -> np.ndarray:
        """Shortcut for ``strategy.as_array()``."""
        return self.strategy.as_array()


def _values_array(values: SiteValues | np.ndarray) -> np.ndarray:
    """Shared coercion plus the closed form's own preconditions.

    Unlike the generic :func:`repro.utils.coercion.values_array`, the
    water-filling formulas additionally require raw arrays to already follow
    the paper's non-increasing order (``SiteValues`` sorts on construction,
    so wrapped inputs skip the check).
    """
    arr = values_array(values)
    if isinstance(values, SiteValues):
        return arr
    if np.any(np.diff(arr) > 1e-12):
        raise ValueError(
            "raw value arrays must be sorted in non-increasing order; "
            "wrap them in SiteValues to sort automatically"
        )
    if np.any(arr <= 0):
        raise ValueError("site values must be strictly positive")
    return arr


def support_size(values: SiteValues | np.ndarray, k: int) -> int:
    """The support prefix length ``W`` of ``sigma_star``.

    ``W`` is the largest ``y`` such that
    ``sum_{x <= y} (1 - (f(y)/f(x))**(1/(k-1))) <= 1``.  The left-hand side is
    non-decreasing in ``y`` so the admissible ``y`` form a prefix.
    """
    k = check_positive_integer(k, "k")
    f = _values_array(values)
    m = f.size
    if k == 1 or m == 1:
        return 1
    exponent = 1.0 / (k - 1)
    inv_pow = safe_power(f, -exponent)  # f(x)^(-1/(k-1))
    cumulative = np.cumsum(inv_pow)
    y = np.arange(1, m + 1, dtype=float)
    # h(y) = y - f(y)^(1/(k-1)) * sum_{x<=y} f(x)^(-1/(k-1))
    h = y - safe_power(f, exponent) * cumulative
    admissible = np.nonzero(h <= 1.0 + _SUPPORT_ATOL)[0]
    if admissible.size == 0:  # cannot happen: h(1) = 0
        return 1
    return int(admissible[-1] + 1)


def normalization_constant(values: SiteValues | np.ndarray, k: int, w: int | None = None) -> float:
    """The constant ``alpha = (W - 1) / sum_{x <= W} f(x)**(-1/(k-1))``."""
    k = check_positive_integer(k, "k")
    f = _values_array(values)
    if w is None:
        w = support_size(values, k)
    if w < 1 or w > f.size:
        raise ValueError(f"support size {w} out of range for M={f.size}")
    if k == 1:
        return 0.0
    exponent = 1.0 / (k - 1)
    denom = float(safe_power(f[:w], -exponent).sum())
    return float((w - 1) / denom)


def sigma_star(values: SiteValues | np.ndarray, k: int) -> SigmaStarResult:
    """Compute ``sigma_star`` (the paper's Algorithm ``sigma*``) for ``k`` players.

    Parameters
    ----------
    values:
        Site values, non-increasing (use :class:`~repro.core.values.SiteValues`
        to sort arbitrary positive vectors).
    k:
        Number of players (``k >= 1``).

    Returns
    -------
    SigmaStarResult
        Strategy, support size ``W``, normalisation ``alpha`` and the common
        equilibrium value ``alpha**(k-1)``.

    Notes
    -----
    * ``k = 1``: a single player simply exploits the most valuable site, so the
      result is a point mass on site 1 with equilibrium value ``f(1)``.
    * For ``M >= 2`` and ``k >= 2`` the support always contains at least two
      sites (the condition at ``y = 2`` is ``1 - (f(2)/f(1))**(1/(k-1)) < 1``).
    """
    k = check_positive_integer(k, "k")
    f = _values_array(values)
    m = f.size

    if k == 1:
        strategy = Strategy.point_mass(m, 0)
        return SigmaStarResult(
            strategy=strategy,
            support_size=1,
            alpha=0.0,
            equilibrium_value=float(f[0]),
            k=1,
        )

    w = support_size(f, k)
    alpha = normalization_constant(f, k, w)
    exponent = 1.0 / (k - 1)

    probabilities = np.zeros(m, dtype=float)
    probabilities[:w] = 1.0 - alpha * safe_power(f[:w], -exponent)
    # Round-off can leave tiny negatives at the support boundary.
    probabilities = np.clip(probabilities, 0.0, None)
    total = probabilities.sum()
    if not np.isclose(total, 1.0, atol=1e-9):
        # This should only ever be floating error; rescale defensively.
        probabilities /= total

    equilibrium_value = float(alpha ** (k - 1)) if w > 1 else 0.0
    if w == 1:
        # Single-site game with several players: everyone must go to the only
        # site and collides, so the exclusive-policy payoff is zero.
        probabilities = np.zeros(m, dtype=float)
        probabilities[0] = 1.0

    return SigmaStarResult(
        strategy=Strategy(probabilities),
        support_size=w,
        alpha=alpha,
        equilibrium_value=equilibrium_value,
        k=k,
    )
