"""Evolutionary stable strategies in the k-player dispersal game.

The paper adopts the generalisation of ESS to an infinite population whose
members are matched uniformly at random in groups of ``k`` (Section 1.4).  A
strategy ``sigma`` is an ESS when, for every mutant ``pi != sigma``, playing
``sigma`` does strictly better than playing ``pi`` once the mutant share of
the population is small enough.

Two equivalent tools are provided:

* the *characterisation* check (Broom & Rychtar): for each mutant ``pi`` there
  must exist an index ``m_pi`` with equal payoffs for every mixed-opponent
  composition below ``m_pi`` and a strict advantage at ``m_pi``;
* the *invasion-barrier* check: the payoff difference
  ``U[sigma; (1-eps) sigma + eps pi] - U[pi; (1-eps) sigma + eps pi]`` must be
  positive for all sufficiently small ``eps``.

Theorem 3 states that ``sigma_star`` is an ESS under the exclusive policy;
the tests and benchmarks verify this numerically on random instances and
random mutants, and verify that the *stronger* stability property proved in
Section 3 (strict advantage for every composition with at least one mutant)
also holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.payoffs import (
    expected_payoff,
    mixture_payoff,
    payoff_against_groups,
    site_values,
)
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.validation import check_positive_integer, check_probability

__all__ = [
    "ESSComparison",
    "ESSReport",
    "is_symmetric_nash",
    "ess_conditions_against",
    "invasion_barrier",
    "ess_report",
]


@dataclass(frozen=True)
class ESSComparison:
    """Outcome of the ESS characterisation against one specific mutant.

    Attributes
    ----------
    resists:
        Whether the resident strategy resists invasion by the mutant.
    m_index:
        The index ``m_pi`` at which the strict advantage appears (``None`` when
        the mutant is not resisted).
    payoff_differences:
        ``E(sigma; sigma^{k-l-1}, pi^l) - E(pi; sigma^{k-l-1}, pi^l)`` for
        ``l = 0 .. k-1`` (the resident-vs-mutant payoff gap as the number of
        mutant co-players grows).
    """

    resists: bool
    m_index: int | None
    payoff_differences: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class ESSReport:
    """Aggregated ESS audit over a collection of mutants."""

    is_ess: bool
    n_mutants: int
    n_resisted: int
    worst_margin: float
    failures: tuple[int, ...]


def is_symmetric_nash(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    atol: float = 1e-8,
) -> bool:
    """``True`` when no unilateral deviation from the symmetric profile is profitable."""
    k = check_positive_integer(k, "k")
    f = values_array(values)
    nu = site_values(f, strategy, k, policy)
    own = float(np.dot(strategy.as_array(), nu))
    return bool(nu.max() <= own + atol)


def ess_conditions_against(
    values: SiteValues | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    atol: float = 1e-9,
) -> ESSComparison:
    """Evaluate the ESS characterisation of Section 1.4 against one mutant.

    For ``l = 0 .. k-1`` compute the payoff difference between the resident and
    the mutant when facing ``l`` mutant co-players and ``k - 1 - l`` resident
    co-players.  The resident resists the mutant when the first non-zero
    difference (scanning ``l`` upwards) is strictly positive.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    diffs = np.empty(k, dtype=float)
    for ell in range(k):
        groups = [(resident, k - 1 - ell), (mutant, ell)]
        resident_payoff = payoff_against_groups(f, resident, groups, policy)
        mutant_payoff = payoff_against_groups(f, mutant, groups, policy)
        diffs[ell] = resident_payoff - mutant_payoff

    for ell in range(k):
        if diffs[ell] > atol:
            return ESSComparison(True, ell, diffs)
        if diffs[ell] < -atol:
            return ESSComparison(False, None, diffs)
    # All payoffs equal for every composition: the mutant is payoff-equivalent
    # (this can only happen for mutant == resident up to numerical noise).
    return ESSComparison(False, None, diffs)


def invasion_barrier(
    values: SiteValues | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    epsilon_grid: np.ndarray | None = None,
) -> float:
    """Empirical invasion barrier: the largest mutant share the resident repels.

    Scans a grid of mutant proportions ``eps`` and returns the largest prefix
    of the grid on which ``U[resident] > U[mutant]`` strictly.  Returns ``0``
    when the resident is invadable at arbitrarily small mutant shares and
    ``1`` when it resists for every tested proportion.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    if epsilon_grid is None:
        epsilon_grid = np.concatenate(
            [np.logspace(-6, -1, 16), np.linspace(0.15, 0.99, 18)]
        )
    barrier = 0.0
    for eps in np.sort(np.asarray(epsilon_grid, dtype=float)):
        eps = check_probability(float(eps), "epsilon")
        resident_payoff = mixture_payoff(f, resident, resident, mutant, eps, k, policy)
        mutant_payoff = mixture_payoff(f, mutant, resident, mutant, eps, k, policy)
        if resident_payoff > mutant_payoff:
            barrier = eps
        else:
            break
    return float(barrier)


def ess_report(
    values: SiteValues | np.ndarray,
    resident: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    mutants: list[Strategy] | None = None,
    n_random_mutants: int = 50,
    rng: np.random.Generator | int | None = 0,
    atol: float = 1e-9,
) -> ESSReport:
    """Audit ``resident`` against a battery of mutants and summarise the outcome.

    The mutant pool contains, unless overridden: every pure strategy, the
    uniform strategy, value-proportional strategies, local perturbations of
    the resident, and ``n_random_mutants`` Dirichlet-random strategies.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    m = f.size
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    if mutants is None:
        mutants = [Strategy.point_mass(m, x) for x in range(m)]
        mutants.append(Strategy.uniform(m))
        mutants.append(Strategy.proportional(f))
        mutants.extend(resident.perturbed(generator, scale=s) for s in (0.01, 0.1, 0.5))
        mutants.extend(Strategy.random(m, generator) for _ in range(n_random_mutants))

    n_resisted = 0
    worst_margin = np.inf
    failures: list[int] = []
    for index, mutant in enumerate(mutants):
        if mutant.total_variation(resident) <= 1e-10:
            # Identical to the resident: not a mutant.
            n_resisted += 1
            continue
        comparison = ess_conditions_against(f, resident, mutant, k, policy, atol=atol)
        if comparison.resists:
            n_resisted += 1
            assert comparison.m_index is not None
            worst_margin = min(worst_margin, float(comparison.payoff_differences[comparison.m_index]))
        else:
            failures.append(index)

    if not np.isfinite(worst_margin):
        worst_margin = 0.0
    return ESSReport(
        is_ess=len(failures) == 0,
        n_mutants=len(mutants),
        n_resisted=n_resisted,
        worst_margin=float(worst_margin),
        failures=tuple(failures),
    )


def resident_vs_mutant_payoffs(
    values: SiteValues | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    epsilon: float,
    k: int,
    policy: CongestionPolicy,
) -> tuple[float, float]:
    """Convenience: ``(U[resident; mix], U[mutant; mix])`` for a mutant share ``epsilon``."""
    f = values_array(values)
    return (
        mixture_payoff(f, resident, resident, mutant, epsilon, k, policy),
        mixture_payoff(f, mutant, resident, mutant, epsilon, k, policy),
    )


def equilibrium_payoff(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
) -> float:
    """Expected payoff of a player in the symmetric profile ``strategy`` (``E(sigma; sigma^{k-1})``)."""
    f = values_array(values)
    return expected_payoff(f, strategy, strategy, k, policy)
