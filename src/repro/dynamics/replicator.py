"""Replicator dynamics for the dispersal game.

The state is the distribution ``p`` of site choices in an infinite population;
the fitness of (pure strategy) site ``x`` is its value ``nu_p(x)`` against
``k - 1`` opponents sampled from the same population.  Rest points with full
support are exactly the distributions equalising ``nu_p`` — i.e. the IFD — so
these dynamics give an evolutionary justification of the equilibrium the paper
analyses.  Two update rules are provided:

* ``"discrete"`` — the Maynard Smith discrete replicator
  ``p'(x) = p(x) (nu(x) + shift) / sum_y p(y) (nu(y) + shift)``,
  where ``shift`` makes fitnesses positive (necessary for aggressive policies
  whose payoffs can be negative);
* ``"euler"`` — an Euler discretisation of the continuous replicator
  ``dp/dt = p(x) (nu(x) - mean fitness)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.payoffs import site_values
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["ReplicatorResult", "replicator_dynamics"]


@dataclass(frozen=True)
class ReplicatorResult:
    """Trajectory summary of a replicator run.

    Attributes
    ----------
    strategy:
        Final population distribution.
    converged:
        ``True`` when the update step fell below the tolerance before the
        iteration cap.
    iterations:
        Number of update steps performed.
    trajectory:
        Recorded states, shape ``(n_records, M)`` (first row is the initial
        state, last row the final one).
    payoff_history:
        Mean population payoff at each recorded state.
    """

    strategy: Strategy
    converged: bool
    iterations: int
    trajectory: np.ndarray
    payoff_history: np.ndarray


def _values_array(values: SiteValues | np.ndarray) -> np.ndarray:
    return values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)


def replicator_dynamics(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    initial: Strategy | None = None,
    method: str = "discrete",
    step_size: float = 0.2,
    max_iter: int = 20_000,
    tol: float = 1e-12,
    record_every: int = 100,
) -> ReplicatorResult:
    """Run replicator dynamics until (approximate) convergence.

    Parameters
    ----------
    values, k, policy:
        Game instance.
    initial:
        Starting distribution; defaults to uniform (which has full support, so
        the dynamics can reach any IFD support).
    method:
        ``"discrete"`` or ``"euler"`` (see module docstring).
    step_size:
        Euler step (ignored by the discrete rule).
    max_iter, tol:
        Convergence control: the run stops when the L1 change of the state in
        one step drops below ``tol``.
    record_every:
        Record the state every this many iterations (plus first and last).
    """
    k = check_positive_integer(k, "k")
    if method not in {"discrete", "euler"}:
        raise ValueError("method must be 'discrete' or 'euler'")
    if step_size <= 0:
        raise ValueError("step_size must be positive")
    record_every = check_positive_integer(record_every, "record_every")

    f = _values_array(values)
    m = f.size
    policy.validate(k)
    p = (initial.as_array() if initial is not None else np.full(m, 1.0 / m)).astype(float).copy()

    # Shift guaranteeing positive fitness even for aggressive (negative) policies.
    worst_congestion = float(np.min(policy.table(k)))
    shift = max(0.0, -worst_congestion * float(f.max())) + 1e-3 * float(f.max())

    states = [p.copy()]
    payoffs = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        nu = site_values(f, p, k, policy)
        mean_payoff = float(np.dot(p, nu))
        if method == "discrete":
            fitness = nu + shift
            denominator = float(np.dot(p, fitness))
            new_p = p * fitness / denominator
        else:
            new_p = p + step_size * p * (nu - mean_payoff)
            new_p = np.clip(new_p, 0.0, None)
            total = new_p.sum()
            if total <= 0:
                raise RuntimeError("euler replicator step annihilated the population state")
            new_p = new_p / total
        change = float(np.abs(new_p - p).sum())
        p = new_p
        if iterations % record_every == 0:
            states.append(p.copy())
            payoffs.append(mean_payoff)
        if change <= tol:
            converged = True
            break

    final_nu = site_values(f, p, k, policy)
    payoffs.append(float(np.dot(p, final_nu)))
    if not np.array_equal(states[-1], p):
        states.append(p.copy())
    return ReplicatorResult(
        strategy=Strategy(np.clip(p, 0.0, None) / p.sum()),
        converged=converged,
        iterations=iterations,
        trajectory=np.asarray(states),
        payoff_history=np.asarray(payoffs),
    )
