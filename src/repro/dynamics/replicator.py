"""Replicator dynamics for the dispersal game.

The state is the distribution ``p`` of site choices in an infinite population;
the fitness of (pure strategy) site ``x`` is its value ``nu_p(x)`` against
``k - 1`` opponents sampled from the same population.  Rest points with full
support are exactly the distributions equalising ``nu_p`` — i.e. the IFD — so
these dynamics give an evolutionary justification of the equilibrium the paper
analyses.  Two update rules are provided:

* ``"discrete"`` — the Maynard Smith discrete replicator
  ``p'(x) = p(x) (nu(x) + shift) / sum_y p(y) (nu(y) + shift)``,
  where ``shift`` makes fitnesses positive (necessary for aggressive policies
  whose payoffs can be negative);
* ``"euler"`` — an Euler discretisation of the continuous replicator
  ``dp/dt = p(x) (nu(x) - mean fitness)``.

This module is a thin ``B = 1`` client of the batched
:class:`~repro.batch.dynamics.DynamicsEngine`; whole grids of replicator runs
go through :func:`~repro.batch.dynamics.replicator_batch` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.dynamics import replicator_batch
from repro.batch.padding import PaddedValues
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array

__all__ = ["ReplicatorResult", "replicator_dynamics"]


@dataclass(frozen=True)
class ReplicatorResult:
    """Trajectory summary of a replicator run.

    Attributes
    ----------
    strategy:
        Final population distribution.
    converged:
        ``True`` when the update step fell below the tolerance before the
        iteration cap.
    iterations:
        Number of update steps performed.
    trajectory:
        Recorded states, shape ``(n_records, M)`` (first row is the initial
        state, last row the final one).
    payoff_history:
        Mean population payoff at each recorded state.
    """

    strategy: Strategy
    converged: bool
    iterations: int
    trajectory: np.ndarray
    payoff_history: np.ndarray


def replicator_dynamics(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    initial: Strategy | None = None,
    method: str = "discrete",
    step_size: float = 0.2,
    max_iter: int = 20_000,
    tol: float = 1e-12,
    record_every: int = 100,
) -> ReplicatorResult:
    """Run replicator dynamics until (approximate) convergence.

    Parameters
    ----------
    values, k, policy:
        Game instance.
    initial:
        Starting distribution; defaults to uniform (which has full support, so
        the dynamics can reach any IFD support).
    method:
        ``"discrete"`` or ``"euler"`` (see module docstring).
    step_size:
        Euler step (ignored by the discrete rule).
    max_iter, tol:
        Convergence control: the run stops when the L1 change of the state in
        one step drops below ``tol``.
    record_every:
        Record the state every this many iterations (plus first and last).
    """
    f = values_array(values)
    batch = replicator_batch(
        PaddedValues(f[None, :], np.array([f.size], dtype=np.int64)),
        k,
        policy,
        initial=None if initial is None else initial.as_array()[None, :],
        method=method,
        step_size=step_size,
        max_iter=max_iter,
        tol=tol,
        record_every=record_every,
    )
    return ReplicatorResult(
        strategy=batch.strategy(0),
        converged=bool(batch.converged[0]),
        iterations=int(batch.iterations[0]),
        trajectory=batch.trajectory(0),
        payoff_history=batch.payoff_history(0),
    )
