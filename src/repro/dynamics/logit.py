"""Logit (quantal-response) dynamics and equilibria.

The logit response to a population state ``p`` puts probability proportional
to ``exp(eta * nu_p(x))`` on site ``x``.  Iterating a damped version of this
map converges to a *logit equilibrium*; as the rationality parameter ``eta``
grows, logit equilibria approach the exact symmetric Nash equilibrium (the
IFD).  Unlike the discrete replicator, the logit map is well defined for
negative payoffs, which makes it the dynamics of choice for aggressive
congestion policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.payoffs import site_values
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["LogitResult", "logit_dynamics", "quantal_response_equilibrium"]


@dataclass(frozen=True)
class LogitResult:
    """Outcome of a logit-dynamics run."""

    strategy: Strategy
    converged: bool
    iterations: int
    rationality: float
    trajectory: np.ndarray


def _values_array(values: SiteValues | np.ndarray) -> np.ndarray:
    return values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)


def _logit_response(nu: np.ndarray, eta: float) -> np.ndarray:
    logits = eta * nu
    logits -= logits.max()  # numerical stabilisation
    weights = np.exp(logits)
    return weights / weights.sum()


def logit_dynamics(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    rationality: float = 50.0,
    damping: float = 0.5,
    step_decay: float = 0.01,
    initial: Strategy | None = None,
    max_iter: int = 50_000,
    tol: float = 1e-13,
    record_every: int = 500,
) -> LogitResult:
    """Iterate the smooth (logit) fictitious-play map to a fixed point.

    ``p_{t+1} = (1 - gamma_t) p_t + gamma_t * softmax(eta * nu_{p_t})`` with a
    decreasing step ``gamma_t = damping / (1 + step_decay * t)``.  The decay is
    what makes the iteration converge for large rationality values, where a
    fixed step would oscillate around the equilibrium.
    """
    k = check_positive_integer(k, "k")
    if rationality <= 0:
        raise ValueError("rationality must be positive")
    if not 0 < damping <= 1:
        raise ValueError("damping must lie in (0, 1]")
    if step_decay < 0:
        raise ValueError("step_decay must be non-negative")
    f = _values_array(values)
    m = f.size
    policy.validate(k)
    p = (initial.as_array() if initial is not None else np.full(m, 1.0 / m)).astype(float).copy()

    states = [p.copy()]
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        nu = site_values(f, p, k, policy)
        response = _logit_response(nu, rationality)
        gamma = damping / (1.0 + step_decay * iterations)
        new_p = (1.0 - gamma) * p + gamma * response
        change = float(np.abs(new_p - p).sum())
        p = new_p
        if iterations % record_every == 0:
            states.append(p.copy())
        if change <= tol:
            converged = True
            break
    if not np.array_equal(states[-1], p):
        states.append(p.copy())
    return LogitResult(
        strategy=Strategy(p / p.sum()),
        converged=converged,
        iterations=iterations,
        rationality=float(rationality),
        trajectory=np.asarray(states),
    )


def quantal_response_equilibrium(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    rationality: float = 200.0,
    **kwargs,
) -> Strategy:
    """Convenience wrapper returning only the logit-equilibrium strategy.

    With a large ``rationality`` this is a numerical approximation of the IFD
    that is derived through an entirely different route than the water-filling
    solver — tests use it as an independent cross-check.
    """
    return logit_dynamics(values, k, policy, rationality=rationality, **kwargs).strategy
