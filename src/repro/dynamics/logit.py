"""Logit (quantal-response) dynamics and equilibria.

The logit response to a population state ``p`` puts probability proportional
to ``exp(eta * nu_p(x))`` on site ``x``.  Iterating a damped version of this
map converges to a *logit equilibrium*; as the rationality parameter ``eta``
grows, logit equilibria approach the exact symmetric Nash equilibrium (the
IFD).  Unlike the discrete replicator, the logit map is well defined for
negative payoffs, which makes it the dynamics of choice for aggressive
congestion policies.

This module is a thin ``B = 1`` client of the batched
:class:`~repro.batch.dynamics.DynamicsEngine`; whole grids of logit runs go
through :func:`~repro.batch.dynamics.logit_batch` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.dynamics import logit_batch
from repro.batch.padding import PaddedValues
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array

__all__ = ["LogitResult", "logit_dynamics", "quantal_response_equilibrium"]


@dataclass(frozen=True)
class LogitResult:
    """Outcome of a logit-dynamics run."""

    strategy: Strategy
    converged: bool
    iterations: int
    rationality: float
    trajectory: np.ndarray


def logit_dynamics(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    rationality: float = 50.0,
    damping: float = 0.5,
    step_decay: float = 0.01,
    initial: Strategy | None = None,
    max_iter: int = 50_000,
    tol: float = 1e-13,
    record_every: int = 500,
) -> LogitResult:
    """Iterate the smooth (logit) fictitious-play map to a fixed point.

    ``p_{t+1} = (1 - gamma_t) p_t + gamma_t * softmax(eta * nu_{p_t})`` with a
    decreasing step ``gamma_t = damping / (1 + step_decay * t)``.  The decay is
    what makes the iteration converge for large rationality values, where a
    fixed step would oscillate around the equilibrium.
    """
    f = values_array(values)
    batch = logit_batch(
        PaddedValues(f[None, :], np.array([f.size], dtype=np.int64)),
        k,
        policy,
        rationality=rationality,
        damping=damping,
        step_decay=step_decay,
        initial=None if initial is None else initial.as_array()[None, :],
        max_iter=max_iter,
        tol=tol,
        record_every=record_every,
    )
    return LogitResult(
        strategy=batch.strategy(0),
        converged=bool(batch.converged[0]),
        iterations=int(batch.iterations[0]),
        rationality=float(rationality),
        trajectory=batch.trajectory(0),
    )


def quantal_response_equilibrium(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    rationality: float = 200.0,
    **kwargs,
) -> Strategy:
    """Convenience wrapper returning only the logit-equilibrium strategy.

    With a large ``rationality`` this is a numerical approximation of the IFD
    that is derived through an entirely different route than the water-filling
    solver — tests use it as an independent cross-check.
    """
    return logit_dynamics(values, k, policy, rationality=rationality, **kwargs).strategy
