"""Damped best-response (fictitious-play style) dynamics.

At every step the population state moves a small amount towards a best
response to itself: ``p_{t+1} = (1 - gamma_t) p_t + gamma_t BR(p_t)``, where
``BR(p)`` spreads uniformly over the sites maximising ``nu_p``.  With a
decreasing step sequence (``gamma_t = gamma_0 / (1 + t * decay)``) the average
play converges to the symmetric equilibrium for the congestion games studied
in the paper; the exploitability of the final state is reported so callers can
verify the quality of the approximation.

This module is a thin ``B = 1`` client of the batched
:class:`~repro.batch.dynamics.DynamicsEngine`; whole grids of best-response
runs go through :func:`~repro.batch.dynamics.best_response_batch` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.dynamics import best_response_batch
from repro.batch.padding import PaddedValues
from repro.batch.payoffs import exploitability_batch
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array

__all__ = ["BestResponseResult", "best_response_dynamics"]


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a damped best-response run."""

    strategy: Strategy
    exploitability: float
    iterations: int
    converged: bool
    trajectory: np.ndarray


def best_response_dynamics(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    initial: Strategy | None = None,
    step_size: float = 0.5,
    step_decay: float = 0.01,
    max_iter: int = 10_000,
    tol: float = 1e-10,
    record_every: int = 100,
    tie_atol: float = 1e-12,
) -> BestResponseResult:
    """Run damped best-response dynamics and report the final exploitability.

    Parameters
    ----------
    step_size, step_decay:
        The step at iteration ``t`` is ``step_size / (1 + step_decay * t)``.
    tol:
        Run stops when the L1 movement of one step drops below ``tol``.
    tie_atol:
        Sites within ``tie_atol`` of the maximal value are all considered best
        responses (the response mixes uniformly over them), which avoids the
        oscillations a strict argmax would cause near equilibrium.
    """
    f = values_array(values)
    padded = PaddedValues(f[None, :], np.array([f.size], dtype=np.int64))
    batch = best_response_batch(
        padded,
        k,
        policy,
        initial=None if initial is None else initial.as_array()[None, :],
        step_size=step_size,
        step_decay=step_decay,
        max_iter=max_iter,
        tol=tol,
        record_every=record_every,
        tie_atol=tie_atol,
    )
    strategy = batch.strategy(0)
    gap = exploitability_batch(padded, strategy.as_array()[None, :], k, policy)
    return BestResponseResult(
        strategy=strategy,
        exploitability=float(gap[0]),
        iterations=int(batch.iterations[0]),
        converged=bool(batch.converged[0]),
        trajectory=batch.trajectory(0),
    )
