"""Damped best-response (fictitious-play style) dynamics.

At every step the population state moves a small amount towards a best
response to itself: ``p_{t+1} = (1 - gamma_t) p_t + gamma_t BR(p_t)``, where
``BR(p)`` spreads uniformly over the sites maximising ``nu_p``.  With a
decreasing step sequence (``gamma_t = gamma_0 / (1 + t * decay)``) the average
play converges to the symmetric equilibrium for the congestion games studied
in the paper; the exploitability of the final state is reported so callers can
verify the quality of the approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.payoffs import exploitability, site_values
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["BestResponseResult", "best_response_dynamics"]


@dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a damped best-response run."""

    strategy: Strategy
    exploitability: float
    iterations: int
    converged: bool
    trajectory: np.ndarray


def _values_array(values: SiteValues | np.ndarray) -> np.ndarray:
    return values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)


def best_response_dynamics(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    initial: Strategy | None = None,
    step_size: float = 0.5,
    step_decay: float = 0.01,
    max_iter: int = 10_000,
    tol: float = 1e-10,
    record_every: int = 100,
    tie_atol: float = 1e-12,
) -> BestResponseResult:
    """Run damped best-response dynamics and report the final exploitability.

    Parameters
    ----------
    step_size, step_decay:
        The step at iteration ``t`` is ``step_size / (1 + step_decay * t)``.
    tol:
        Run stops when the L1 movement of one step drops below ``tol``.
    tie_atol:
        Sites within ``tie_atol`` of the maximal value are all considered best
        responses (the response mixes uniformly over them), which avoids the
        oscillations a strict argmax would cause near equilibrium.
    """
    k = check_positive_integer(k, "k")
    if step_size <= 0 or not (0 <= step_decay):
        raise ValueError("step_size must be positive and step_decay non-negative")
    f = _values_array(values)
    m = f.size
    policy.validate(k)
    p = (initial.as_array() if initial is not None else np.full(m, 1.0 / m)).astype(float).copy()

    states = [p.copy()]
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        nu = site_values(f, p, k, policy)
        best_mask = nu >= nu.max() - tie_atol
        response = best_mask / best_mask.sum()
        gamma = step_size / (1.0 + step_decay * iterations)
        new_p = (1.0 - gamma) * p + gamma * response
        change = float(np.abs(new_p - p).sum())
        p = new_p
        if iterations % record_every == 0:
            states.append(p.copy())
        if change <= tol:
            converged = True
            break
    if not np.array_equal(states[-1], p):
        states.append(p.copy())
    strategy = Strategy(p / p.sum())
    return BestResponseResult(
        strategy=strategy,
        exploitability=exploitability(f, strategy, k, policy),
        iterations=iterations,
        converged=converged,
        trajectory=np.asarray(states),
    )
