"""Evolutionary and learning dynamics over symmetric strategies.

The paper's solution concepts (IFD, ESS) are static; this subpackage provides
the dynamic counterparts that justify them as the outcomes of decentralised
adaptation:

* :mod:`repro.dynamics.replicator` — discrete-time replicator dynamics over
  the site-choice distribution of an infinite population;
* :mod:`repro.dynamics.logit` — logit (quantal-response) dynamics and
  equilibria, a smoothed best response robust to negative payoffs;
* :mod:`repro.dynamics.best_response` — damped best-response / fictitious-play
  style iterations;
* :mod:`repro.dynamics.invasion` — resident-vs-mutant share dynamics used to
  visualise the ESS property of ``sigma_star``.

All four are thin ``B = 1`` wrappers around the unified batched stepping
engine of :mod:`repro.batch.dynamics`; grids of trajectories should go
through :class:`~repro.batch.dynamics.DynamicsEngine` (or the
``replicator_batch`` / ``logit_batch`` / ``best_response_batch`` /
``invasion_batch`` entry points) instead of looping these wrappers.
"""

from repro.dynamics.replicator import ReplicatorResult, replicator_dynamics
from repro.dynamics.logit import LogitResult, logit_dynamics, quantal_response_equilibrium
from repro.dynamics.best_response import BestResponseResult, best_response_dynamics
from repro.dynamics.invasion import InvasionResult, invasion_dynamics

__all__ = [
    "ReplicatorResult",
    "replicator_dynamics",
    "LogitResult",
    "logit_dynamics",
    "quantal_response_equilibrium",
    "BestResponseResult",
    "best_response_dynamics",
    "InvasionResult",
    "invasion_dynamics",
]
