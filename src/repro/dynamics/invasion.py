"""Resident-vs-mutant invasion dynamics.

Section 1.4 of the paper defines an ESS through the payoff comparison in a
population containing a fraction ``eps`` of mutants.  This module simulates
the natural two-type dynamics on that fraction: the mutant share grows when
mutants earn more than residents in the current mixture and shrinks when they
earn less (a two-type replicator equation on the share).  If the resident is
an ESS and the initial mutant share is below its invasion barrier, the share
converges to zero — which is exactly what the Theorem 3 experiments show for
``sigma_star`` under the exclusive policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.payoffs import mixture_payoff
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer, check_probability

__all__ = ["InvasionResult", "invasion_dynamics"]


@dataclass(frozen=True)
class InvasionResult:
    """Trajectory of the mutant population share."""

    shares: np.ndarray
    mutant_extinct: bool
    mutant_fixated: bool
    iterations: int

    @property
    def final_share(self) -> float:
        """Mutant share at the end of the run."""
        return float(self.shares[-1])


def _values_array(values: SiteValues | np.ndarray) -> np.ndarray:
    return values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)


def invasion_dynamics(
    values: SiteValues | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    initial_share: float = 0.05,
    selection_strength: float = 0.5,
    max_iter: int = 5_000,
    extinction_threshold: float = 1e-6,
    fixation_threshold: float = 1.0 - 1e-6,
) -> InvasionResult:
    """Simulate the mutant-share dynamics ``eps' = eps + s * eps (1 - eps) (U_mut - U_res)``.

    Parameters
    ----------
    initial_share:
        Initial mutant proportion ``eps_0``.
    selection_strength:
        Scaling ``s`` of the payoff difference in the share update (the payoff
        difference is normalised by the largest site value so the step size is
        dimensionless).
    extinction_threshold, fixation_threshold:
        The run stops early once the share crosses either threshold.
    """
    k = check_positive_integer(k, "k")
    initial_share = check_probability(initial_share, "initial_share")
    if selection_strength <= 0:
        raise ValueError("selection_strength must be positive")
    f = _values_array(values)
    policy.validate(k)
    scale = float(np.max(np.abs(f))) or 1.0

    share = float(initial_share)
    shares = [share]
    iterations = 0
    for iterations in range(1, max_iter + 1):
        resident_payoff = mixture_payoff(f, resident, resident, mutant, share, k, policy)
        mutant_payoff = mixture_payoff(f, mutant, resident, mutant, share, k, policy)
        delta = (mutant_payoff - resident_payoff) / scale
        share = share + selection_strength * share * (1.0 - share) * delta
        share = float(np.clip(share, 0.0, 1.0))
        shares.append(share)
        if share <= extinction_threshold or share >= fixation_threshold:
            break

    return InvasionResult(
        shares=np.asarray(shares),
        mutant_extinct=bool(share <= extinction_threshold),
        mutant_fixated=bool(share >= fixation_threshold),
        iterations=iterations,
    )
