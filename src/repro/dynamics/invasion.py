"""Resident-vs-mutant invasion dynamics.

Section 1.4 of the paper defines an ESS through the payoff comparison in a
population containing a fraction ``eps`` of mutants.  This module simulates
the natural two-type dynamics on that fraction: the mutant share grows when
mutants earn more than residents in the current mixture and shrinks when they
earn less (a two-type replicator equation on the share).  If the resident is
an ESS and the initial mutant share is below its invasion barrier, the share
converges to zero — which is exactly what the Theorem 3 experiments show for
``sigma_star`` under the exclusive policy.

This module is a thin ``B = 1`` client of the batched
:class:`~repro.batch.dynamics.DynamicsEngine`; whole batteries of invasion
checks go through :func:`~repro.batch.dynamics.invasion_batch` instead.  Each
step evaluates the mixture's payoff kernel once and derives both the resident
and the mutant payoff from it (the old loop evaluated it twice per step).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.dynamics import invasion_batch
from repro.batch.padding import PaddedValues
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array

__all__ = ["InvasionResult", "invasion_dynamics"]


@dataclass(frozen=True)
class InvasionResult:
    """Trajectory of the mutant population share."""

    shares: np.ndarray
    mutant_extinct: bool
    mutant_fixated: bool
    iterations: int

    @property
    def final_share(self) -> float:
        """Mutant share at the end of the run."""
        return float(self.shares[-1])


def invasion_dynamics(
    values: SiteValues | np.ndarray,
    resident: Strategy,
    mutant: Strategy,
    k: int,
    policy: CongestionPolicy,
    *,
    initial_share: float = 0.05,
    selection_strength: float = 0.5,
    max_iter: int = 5_000,
    extinction_threshold: float = 1e-6,
    fixation_threshold: float = 1.0 - 1e-6,
) -> InvasionResult:
    """Simulate the mutant-share dynamics ``eps' = eps + s * eps (1 - eps) (U_mut - U_res)``.

    Parameters
    ----------
    initial_share:
        Initial mutant proportion ``eps_0``.
    selection_strength:
        Scaling ``s`` of the payoff difference in the share update (the payoff
        difference is normalised by the largest site value so the step size is
        dimensionless).
    extinction_threshold, fixation_threshold:
        The run stops early once the share crosses either threshold.
    """
    f = values_array(values)
    batch = invasion_batch(
        PaddedValues(f[None, :], np.array([f.size], dtype=np.int64)),
        resident.as_array()[None, :],
        mutant.as_array()[None, :],
        k,
        policy,
        initial_shares=initial_share,
        selection_strength=selection_strength,
        max_iter=max_iter,
        extinction_threshold=extinction_threshold,
        fixation_threshold=fixation_threshold,
    )
    final_share = float(batch.states[0, 0])
    return InvasionResult(
        shares=batch.trajectory(0).ravel(),
        mutant_extinct=bool(final_share <= extinction_threshold),
        mutant_fixated=bool(final_share >= fixation_threshold),
        iterations=int(batch.iterations[0]),
    )
