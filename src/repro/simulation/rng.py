"""Random-number-generation helpers for reproducible simulations.

Every stochastic entry point of the library accepts either a seed or a
``numpy.random.Generator``.  When a simulation is split into independent
chunks (for example to bound memory, or to distribute work across processes),
:func:`spawn_generators` derives statistically independent child generators
from a single seed using NumPy's ``SeedSequence`` spawning mechanism.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed / generator / ``None`` into a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_generators(n: int, rng: np.random.Generator | int | None = None) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Parameters
    ----------
    n:
        Number of child generators.
    rng:
        Base seed or generator.  When a generator is supplied its bit
        generator's seed sequence is spawned, so children are independent of
        each other *and* of the parent stream.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if isinstance(rng, np.random.Generator):
        seed_seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        children = seed_seq.spawn(n)
    else:
        children = np.random.SeedSequence(rng).spawn(n)
    return [np.random.default_rng(child) for child in children]
