"""Backward-compatible shim: RNG helpers now live in :mod:`repro.utils.rng`.

The generator coercion and ``SeedSequence`` spawning used by the simulation
engine were folded into :mod:`repro.utils.rng` together with the experiment
runner's per-task seed spawning, so the whole library shares one documented
seed-derivation policy.  Import from :mod:`repro.utils.rng` in new code.
"""

from __future__ import annotations

from repro.utils.rng import as_generator, spawn_generators, spawn_seed_sequences

__all__ = ["as_generator", "spawn_generators", "spawn_seed_sequences"]
