"""Vectorised Monte-Carlo engine for the one-shot dispersal game.

A single *trial* consists of ``k`` players independently drawing a site and
collecting the policy reward determined by how many of them collided.  The
engine simulates many trials at once using NumPy (one ``(n_trials, k)`` draw
and a ``bincount`` per batch) and reports coverage, payoffs and collision
statistics, each with a standard error so tests can perform calibrated
comparisons against the exact formulas of :mod:`repro.core`.

Backend note: simulation is **host-side by design** — its hot path is RNG
draws and ``bincount`` histograms, both of which live behind the NumPy-only
adapters of :mod:`repro.backend` rather than the Array-API standard.  The
engine therefore accepts values/strategies from any backend (they are
materialised on the host on entry) and always returns plain NumPy arrays
with documented dtypes: ``occupancy_histogram`` is ``int64`` counts and
``site_visit_frequencies`` is ``float64`` per-trial frequencies, whatever
backend produced the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.simulation.rng import as_generator
from repro.utils.coercion import values_array
from repro.utils.sampling import inverse_cdf_sample, inverse_cdf_sample_stacked, stacked_cdfs, strategy_cdf
from repro.utils.validation import check_positive_integer

__all__ = [
    "SimulationResult",
    "ProfileSimulationResult",
    "DispersalSimulator",
    "simulate_dispersal",
    "simulate_profile",
]


@dataclass(frozen=True)
class SimulationResult:
    """Summary statistics of a symmetric-profile simulation.

    All "mean" quantities are per-trial averages; the matching ``*_sem``
    fields are standard errors of those means.  A single trial carries no
    spread information, so every ``*_sem`` is ``nan`` when
    ``n_trials == 1`` (rather than a misleading ``0.0``).

    Attributes
    ----------
    occupancy_histogram:
        Plain ``numpy.int64`` array of length ``k + 1``; entry ``l`` counts
        the ``(trial, site)`` pairs with exactly ``l`` visitors, summed over
        all trials.  Always a host NumPy array regardless of the active
        array backend.
    site_visit_frequencies:
        Plain ``numpy.float64`` array of length ``M``; entry ``x`` is the
        fraction of trials in which site ``x`` received at least one
        visitor.  Always a host NumPy array regardless of the active array
        backend.
    """

    n_trials: int
    k: int
    coverage_mean: float
    coverage_sem: float
    payoff_mean: float
    payoff_sem: float
    collision_rate: float
    sites_visited_mean: float
    occupancy_histogram: np.ndarray
    site_visit_frequencies: np.ndarray


@dataclass(frozen=True)
class ProfileSimulationResult:
    """Summary of a simulation in which each player may use a different strategy.

    As in :class:`SimulationResult`, every ``*_sem`` field is ``nan`` when
    ``n_trials == 1``; ``player_payoff_means`` / ``player_payoff_sems`` are
    plain ``numpy.float64`` arrays of length ``k``.
    """

    n_trials: int
    k: int
    coverage_mean: float
    coverage_sem: float
    player_payoff_means: np.ndarray
    player_payoff_sems: np.ndarray


class DispersalSimulator:
    """Reusable simulator bound to one game instance ``(f, k, policy)``.

    Parameters
    ----------
    values, k, policy:
        Game instance.  The congestion table is precomputed once.
    batch_size:
        Maximum number of trials simulated per NumPy batch; larger requests
        are split to bound peak memory at roughly ``batch_size * k`` integers.
    """

    def __init__(
        self,
        values: SiteValues | np.ndarray,
        k: int,
        policy: CongestionPolicy,
        *,
        batch_size: int = 100_000,
    ) -> None:
        self.values = values_array(values)
        self.k = check_positive_integer(k, "k")
        self.policy = policy
        policy.validate(self.k)
        self.batch_size = check_positive_integer(batch_size, "batch_size")
        self._congestion_table = policy.table(self.k)

    # ------------------------------------------------------------------ core
    def _simulate_choices(
        self, cdf: np.ndarray, n_trials: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw an ``(n_trials, k)`` matrix of site choices for i.i.d. players.

        One batched inverse-CDF draw (``rng.random`` + ``searchsorted``)
        instead of ``generator.choice``, which re-validates its probability
        vector on every call.
        """
        return inverse_cdf_sample(cdf, (n_trials, self.k), rng)

    def _occupancies(self, choices: np.ndarray) -> np.ndarray:
        """Per-trial site occupancy counts, shape ``(n_trials, M)``."""
        n_trials = choices.shape[0]
        m = self.values.size
        flat = choices + m * np.arange(n_trials)[:, None]
        counts = np.bincount(flat.ravel(), minlength=n_trials * m)
        return counts.reshape(n_trials, m)

    def run(
        self,
        strategy: Strategy,
        n_trials: int,
        rng: np.random.Generator | int | None = None,
    ) -> SimulationResult:
        """Simulate ``n_trials`` games of the symmetric profile ``strategy``."""
        n_trials = check_positive_integer(n_trials, "n_trials")
        generator = as_generator(rng)
        m = self.values.size
        probabilities = strategy.as_array()
        if probabilities.size != m:
            raise ValueError("strategy and values must cover the same number of sites")

        coverage_sum = 0.0
        coverage_sq_sum = 0.0
        payoff_sum = 0.0
        payoff_sq_sum = 0.0
        collisions = 0
        sites_visited_sum = 0.0
        occupancy_histogram = np.zeros(self.k + 1, dtype=np.int64)
        site_visits = np.zeros(m, dtype=np.int64)

        cdf = strategy_cdf(probabilities)
        remaining = n_trials
        while remaining > 0:
            batch = min(remaining, self.batch_size)
            choices = self._simulate_choices(cdf, batch, generator)
            occupancy = self._occupancies(choices)

            visited = occupancy > 0
            coverage_batch = visited @ self.values
            coverage_sum += float(coverage_batch.sum())
            coverage_sq_sum += float((coverage_batch**2).sum())
            sites_visited_sum += float(visited.sum())
            site_visits += visited.sum(axis=0)

            # Occupancy of the site chosen by each player, then its payoff.
            player_occupancy = np.take_along_axis(occupancy, choices, axis=1)
            player_payoffs = self.values[choices] * self._congestion_table[player_occupancy - 1]
            per_trial_payoff = player_payoffs.mean(axis=1)
            payoff_sum += float(per_trial_payoff.sum())
            payoff_sq_sum += float((per_trial_payoff**2).sum())
            collisions += int((player_occupancy > 1).sum())

            histogram = np.bincount(occupancy.ravel(), minlength=self.k + 1)
            occupancy_histogram += histogram[: self.k + 1]

            remaining -= batch

        coverage_mean = coverage_sum / n_trials
        coverage_var = max(coverage_sq_sum / n_trials - coverage_mean**2, 0.0)
        payoff_mean = payoff_sum / n_trials
        payoff_var = max(payoff_sq_sum / n_trials - payoff_mean**2, 0.0)
        # One trial has no spread information: report nan instead of a
        # spuriously confident 0.0 standard error.
        if n_trials == 1:
            coverage_sem = payoff_sem = float("nan")
        else:
            coverage_sem = float(np.sqrt(coverage_var / n_trials))
            payoff_sem = float(np.sqrt(payoff_var / n_trials))
        return SimulationResult(
            n_trials=n_trials,
            k=self.k,
            coverage_mean=coverage_mean,
            coverage_sem=coverage_sem,
            payoff_mean=payoff_mean,
            payoff_sem=payoff_sem,
            collision_rate=collisions / (n_trials * self.k),
            sites_visited_mean=sites_visited_sum / n_trials,
            occupancy_histogram=np.asarray(occupancy_histogram, dtype=np.int64),
            site_visit_frequencies=np.asarray(site_visits / n_trials, dtype=np.float64),
        )

    def run_profile(
        self,
        strategies: Sequence[Strategy],
        n_trials: int,
        rng: np.random.Generator | int | None = None,
    ) -> ProfileSimulationResult:
        """Simulate a (possibly asymmetric) strategy profile, one strategy per player."""
        n_trials = check_positive_integer(n_trials, "n_trials")
        if len(strategies) != self.k:
            raise ValueError(f"expected {self.k} strategies, got {len(strategies)}")
        generator = as_generator(rng)

        coverage_sum = 0.0
        coverage_sq_sum = 0.0
        payoff_sum = np.zeros(self.k)
        payoff_sq_sum = np.zeros(self.k)

        # One stacked CDF per player, inverted jointly: the whole profile draw
        # is a single vectorised inverse-CDF pass per batch instead of a
        # per-player loop of ``generator.choice`` calls.
        cdfs = stacked_cdfs([strategy.as_array() for strategy in strategies])
        remaining = n_trials
        while remaining > 0:
            batch = min(remaining, self.batch_size)
            choices = inverse_cdf_sample_stacked(cdfs, batch, generator)
            occupancy = self._occupancies(choices)
            visited = occupancy > 0
            coverage_batch = visited @ self.values
            coverage_sum += float(coverage_batch.sum())
            coverage_sq_sum += float((coverage_batch**2).sum())

            player_occupancy = np.take_along_axis(occupancy, choices, axis=1)
            player_payoffs = self.values[choices] * self._congestion_table[player_occupancy - 1]
            payoff_sum += player_payoffs.sum(axis=0)
            payoff_sq_sum += (player_payoffs**2).sum(axis=0)
            remaining -= batch

        coverage_mean = coverage_sum / n_trials
        coverage_var = max(coverage_sq_sum / n_trials - coverage_mean**2, 0.0)
        payoff_means = payoff_sum / n_trials
        payoff_vars = np.maximum(payoff_sq_sum / n_trials - payoff_means**2, 0.0)
        if n_trials == 1:
            # A single trial has no spread information (see SimulationResult).
            coverage_sem = float("nan")
            payoff_sems = np.full(self.k, np.nan)
        else:
            coverage_sem = float(np.sqrt(coverage_var / n_trials))
            payoff_sems = np.sqrt(payoff_vars / n_trials)
        return ProfileSimulationResult(
            n_trials=n_trials,
            k=self.k,
            coverage_mean=coverage_mean,
            coverage_sem=coverage_sem,
            player_payoff_means=payoff_means,
            player_payoff_sems=payoff_sems,
        )


def simulate_dispersal(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`DispersalSimulator.run`."""
    return DispersalSimulator(values, k, policy, **kwargs).run(strategy, n_trials, rng)


def simulate_profile(
    values: SiteValues | np.ndarray,
    strategies: Sequence[Strategy],
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> ProfileSimulationResult:
    """One-call convenience wrapper around :class:`DispersalSimulator.run_profile`."""
    return DispersalSimulator(values, len(strategies), policy, **kwargs).run_profile(
        strategies, n_trials, rng
    )
