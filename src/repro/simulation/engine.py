"""Monte-Carlo engine for the one-shot dispersal game (thin ``B = 1`` wrappers).

A single *trial* consists of ``k`` players independently drawing a site and
collecting the policy reward determined by how many of them collided.  Since
the batched stochastic layer landed, the actual simulation loop lives in
:mod:`repro.batch.simulation` — one ``(n_trials, B, k)`` inverse-CDF draw and
one segment-sum ``bincount`` per memory chunk for a whole instance batch —
and this module wraps it for the single-instance case with the original
public signatures, exactly like the ``dynamics/`` wrappers over the batched
:class:`~repro.batch.dynamics.DynamicsEngine`.

Backend note: simulation is **host-side by design** — its hot path is RNG
draws and ``bincount`` histograms, both of which live behind the NumPy-only
adapters of :mod:`repro.backend` rather than the Array-API standard.  The
engine therefore accepts values/strategies from any backend (they are
materialised on the host on entry) and always returns plain NumPy arrays
with documented dtypes: ``occupancy_histogram`` is ``int64`` counts and
``site_visit_frequencies`` is ``float64`` per-trial frequencies, whatever
backend produced the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch.simulation import simulate_dispersal_batch, simulate_profile_batch
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = [
    "SimulationResult",
    "ProfileSimulationResult",
    "DispersalSimulator",
    "simulate_dispersal",
    "simulate_profile",
]


@dataclass(frozen=True)
class SimulationResult:
    """Summary statistics of a symmetric-profile simulation.

    All "mean" quantities are per-trial averages; the matching ``*_sem``
    fields are standard errors of those means.  A single trial carries no
    spread information, so every ``*_sem`` is ``nan`` when
    ``n_trials == 1`` (rather than a misleading ``0.0``).

    Attributes
    ----------
    occupancy_histogram:
        Plain ``numpy.int64`` array of length ``k + 1``; entry ``l`` counts
        the ``(trial, site)`` pairs with exactly ``l`` visitors, summed over
        all trials.  Always a host NumPy array regardless of the active
        array backend.
    site_visit_frequencies:
        Plain ``numpy.float64`` array of length ``M``; entry ``x`` is the
        fraction of trials in which site ``x`` received at least one
        visitor.  Always a host NumPy array regardless of the active array
        backend.
    """

    n_trials: int
    k: int
    coverage_mean: float
    coverage_sem: float
    payoff_mean: float
    payoff_sem: float
    collision_rate: float
    sites_visited_mean: float
    occupancy_histogram: np.ndarray
    site_visit_frequencies: np.ndarray


@dataclass(frozen=True)
class ProfileSimulationResult:
    """Summary of a simulation in which each player may use a different strategy.

    As in :class:`SimulationResult`, every ``*_sem`` field is ``nan`` when
    ``n_trials == 1``; ``player_payoff_means`` / ``player_payoff_sems`` are
    plain ``numpy.float64`` arrays of length ``k``.
    """

    n_trials: int
    k: int
    coverage_mean: float
    coverage_sem: float
    player_payoff_means: np.ndarray
    player_payoff_sems: np.ndarray


class DispersalSimulator:
    """Reusable simulator bound to one game instance ``(f, k, policy)``.

    A thin ``B = 1`` client of :func:`repro.batch.simulation.simulate_dispersal_batch`
    (and :func:`~repro.batch.simulation.simulate_profile_batch`): the draw
    layouts coincide for a single instance, so a wrapped run consumes exactly
    the same uniform stream the pre-batch engine did.

    Parameters
    ----------
    values, k, policy:
        Game instance.  Values must be strictly positive (the padded-batch
        convention of :mod:`repro.batch`); the congestion table is
        precomputed once by the batch kernel.
    batch_size:
        Maximum number of trials simulated per chunk; larger requests are
        split to bound peak memory at roughly ``batch_size * k`` integers
        (forwarded to the batch kernel's ``max_chunk_draws`` cap as
        ``batch_size * k`` draws).
    """

    def __init__(
        self,
        values: SiteValues | np.ndarray,
        k: int,
        policy: CongestionPolicy,
        *,
        batch_size: int = 100_000,
    ) -> None:
        self.values = values_array(values)
        self.k = check_positive_integer(k, "k")
        self.policy = policy
        policy.validate(self.k)
        self.batch_size = check_positive_integer(batch_size, "batch_size")
        self._values_row = self.values[None, :]

    def run(
        self,
        strategy: Strategy,
        n_trials: int,
        rng: np.random.Generator | int | None = None,
    ) -> SimulationResult:
        """Simulate ``n_trials`` games of the symmetric profile ``strategy``."""
        n_trials = check_positive_integer(n_trials, "n_trials")
        probabilities = strategy.as_array()
        if probabilities.size != self.values.size:
            raise ValueError("strategy and values must cover the same number of sites")
        batch = simulate_dispersal_batch(
            self._values_row,
            probabilities[None, :],
            self.k,
            self.policy,
            n_trials,
            as_generator(rng),
            max_chunk_draws=self.batch_size * self.k,
        )
        return SimulationResult(
            n_trials=n_trials,
            k=self.k,
            coverage_mean=float(batch.coverage_means[0]),
            coverage_sem=float(batch.coverage_sems[0]),
            payoff_mean=float(batch.payoff_means[0]),
            payoff_sem=float(batch.payoff_sems[0]),
            collision_rate=float(batch.collision_rates[0]),
            sites_visited_mean=float(batch.sites_visited_means[0]),
            occupancy_histogram=np.asarray(batch.occupancy_histograms[0], dtype=np.int64),
            site_visit_frequencies=np.asarray(
                batch.site_visit_frequencies[0], dtype=np.float64
            ),
        )

    def run_profile(
        self,
        strategies: Sequence[Strategy],
        n_trials: int,
        rng: np.random.Generator | int | None = None,
    ) -> ProfileSimulationResult:
        """Simulate a (possibly asymmetric) strategy profile, one strategy per player."""
        n_trials = check_positive_integer(n_trials, "n_trials")
        if len(strategies) != self.k:
            raise ValueError(f"expected {self.k} strategies, got {len(strategies)}")
        batch = simulate_profile_batch(
            self._values_row,
            [list(strategies)],
            self.k,
            self.policy,
            n_trials,
            as_generator(rng),
            max_chunk_draws=self.batch_size * self.k,
        )
        return ProfileSimulationResult(
            n_trials=n_trials,
            k=self.k,
            coverage_mean=float(batch.coverage_means[0]),
            coverage_sem=float(batch.coverage_sems[0]),
            player_payoff_means=np.asarray(batch.player_payoff_means[0], dtype=np.float64),
            player_payoff_sems=np.asarray(batch.player_payoff_sems[0], dtype=np.float64),
        )


def simulate_dispersal(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`DispersalSimulator.run`."""
    return DispersalSimulator(values, k, policy, **kwargs).run(strategy, n_trials, rng)


def simulate_profile(
    values: SiteValues | np.ndarray,
    strategies: Sequence[Strategy],
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> ProfileSimulationResult:
    """One-call convenience wrapper around :class:`DispersalSimulator.run_profile`."""
    return DispersalSimulator(values, len(strategies), policy, **kwargs).run_profile(
        strategies, n_trials, rng
    )
