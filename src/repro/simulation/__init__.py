"""Monte-Carlo simulation of the one-shot dispersal game.

The analytic formulas of :mod:`repro.core` (coverage, site values, mixture
payoffs) are all expectations over the players' independent site choices.
This subpackage samples those choices directly — fully vectorised over trials
— so every analytic quantity has an empirical counterpart that tests and
benchmarks can cross-check.
"""

from repro.simulation.engine import (
    DispersalSimulator,
    ProfileSimulationResult,
    SimulationResult,
    simulate_dispersal,
    simulate_profile,
)
from repro.simulation.estimators import (
    empirical_coverage,
    empirical_individual_payoff,
    empirical_site_values,
    standard_error,
)
from repro.utils.rng import spawn_generators

__all__ = [
    "DispersalSimulator",
    "SimulationResult",
    "ProfileSimulationResult",
    "simulate_dispersal",
    "simulate_profile",
    "empirical_coverage",
    "empirical_individual_payoff",
    "empirical_site_values",
    "standard_error",
    "spawn_generators",
]
