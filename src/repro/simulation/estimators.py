"""Empirical estimators mirroring the analytic quantities of :mod:`repro.core`.

Each estimator returns a point estimate together with its standard error, so
the accompanying tests can assert agreement with the exact formulas at a
calibrated number of standard deviations rather than with ad-hoc tolerances.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.simulation.engine import DispersalSimulator
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = [
    "standard_error",
    "empirical_coverage",
    "empirical_individual_payoff",
    "empirical_site_values",
]


def standard_error(samples: np.ndarray) -> float:
    """Standard error of the mean of a 1-D sample array."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        return float("inf")
    return float(arr.std(ddof=1) / np.sqrt(arr.size))


def empirical_coverage(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """Monte-Carlo estimate ``(mean, sem)`` of ``Cover(strategy)``."""
    result = DispersalSimulator(values, k, policy).run(strategy, n_trials, rng)
    return result.coverage_mean, result.coverage_sem


def empirical_individual_payoff(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """Monte-Carlo estimate ``(mean, sem)`` of a player's payoff in the symmetric profile."""
    result = DispersalSimulator(values, k, policy).run(strategy, n_trials, rng)
    # The engine averages payoffs over the k players of each trial, which is an
    # unbiased estimator of the individual expected payoff.
    return result.payoff_mean, result.payoff_sem


def empirical_site_values(
    values: SiteValues | np.ndarray,
    strategy: Strategy,
    k: int,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo estimate of ``nu_p(x)`` for every site (Eq. 2 of the paper).

    A focal player is pinned to each site in turn while ``k - 1`` opponents
    sample from ``strategy``; the focal player's average reward estimates the
    site value.  Returns ``(means, sems)`` with one entry per site.
    """
    n_trials = check_positive_integer(n_trials, "n_trials")
    k = check_positive_integer(k, "k")
    f = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)
    generator = as_generator(rng)
    policy.validate(k)
    m = f.size
    c_table = policy.table(k)

    means = np.empty(m)
    sems = np.empty(m)
    opponent_probs = strategy.as_array()
    for site in range(m):
        if k == 1:
            occupancy_of_focal = np.ones(n_trials, dtype=int)
        else:
            opponents = generator.choice(m, size=(n_trials, k - 1), p=opponent_probs)
            occupancy_of_focal = 1 + (opponents == site).sum(axis=1)
        rewards = f[site] * c_table[occupancy_of_focal - 1]
        means[site] = rewards.mean()
        sems[site] = standard_error(rewards)
    return means, sems
