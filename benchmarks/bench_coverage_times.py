"""Smoke benchmark: exact coverage-time kernels vs equal-precision Monte-Carlo.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/bench_coverage_times.py --output BENCH_covertime.json

The comparison the Von Schelling kernels were built for: producing
``E[T]`` and ``P(T <= t)`` for a whole batch of visit distributions

* **exactly**, in one inclusion-exclusion pass
  (:func:`repro.batch.coverage_times.expected_coverage_time_batch` /
  :func:`~repro.batch.coverage_times.coverage_time_cdf_batch`), vs
* **empirically to equal precision**, with the merged-search Monte-Carlo
  estimator (:func:`~repro.batch.coverage_times.estimate_coverage_time_mc`).

"Equal precision" is calibrated per run: a pilot pass measures the
estimator's per-row variance, from which the trial count needed to push
every row's standard error below ``rel_target * E[T]`` follows as
``n = var / (rel_target * E[T])**2`` (the binding row decides).  The timed
Monte-Carlo pass then runs exactly that many trials — any fewer and it
would be *less* precise than the exact kernels, which carry no sampling
error at all, so the reported speedup is a conservative lower bound.

A correctness spot check (exact vs pilot estimate within 8 sigma on every
clean row) guards against timing a fast wrong answer.  The script exits
non-zero when the speedup falls below ``--min-speedup`` (default 5x) — the
acceptance bar of the exact coverage-time layer, enforced as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.utils.envinfo import environment_metadata

from repro.batch.coverage_times import (
    coverage_time_cdf_batch,
    estimate_coverage_time_mc,
    expected_coverage_time_batch,
    partial_coverage_time_batch,
)

SEED = 20180503

#: Coverage grid: ragged site counts inside the exact enumeration cap,
#: mixed per-row searcher counts — the conformance-suite regime.
N_ROWS = 64
M_RANGE = (4, 8)
K_CHOICES = (1, 2, 3, 5)
CDF_TIMES = (1, 2, 4, 8, 16, 32)

#: Precision target: the Monte-Carlo pass must push every row's SEM below
#: this fraction of its exact expectation.  A loose 5% keeps the smoke-job
#: runtime in seconds; the exact kernels carry no sampling error at all, so
#: any tightening only widens the reported speedup.
REL_TARGET = 0.05
PILOT_TRIALS = 300
MAX_EQUAL_PRECISION_TRIALS = 200_000


def best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def coverage_grid(rng):
    rows = []
    for _ in range(N_ROWS):
        m = int(rng.integers(*M_RANGE))
        rows.append(rng.dirichlet(np.ones(m) * 0.9))
    ks = rng.choice(K_CHOICES, size=N_ROWS).astype(np.int64)
    return rows, ks


def run_coverage_time_bench(
    output: Path, *, repeats: int, min_speedup: float
) -> tuple[bool, list[str]]:
    """Time exact vs equal-precision Monte-Carlo and write the artifact."""
    rng = np.random.default_rng(SEED)
    rows, ks = coverage_grid(rng)
    js = np.asarray([-(-len(row) // 2) for row in rows], dtype=np.int64)
    times = np.asarray(CDF_TIMES)

    def exact_pass():
        expected = expected_coverage_time_batch(rows, ks)
        partial = partial_coverage_time_batch(rows, ks, js)
        cdf = coverage_time_cdf_batch(rows, ks, times)
        return expected, partial, cdf

    expected, _, _ = exact_pass()  # warm-up (also caches subset indices)
    exact_seconds = best_of(exact_pass, repeats)

    # Pilot: measure the estimator's variance, derive the equal-precision
    # trial count, and spot-check correctness on the way.
    pilot = estimate_coverage_time_mc(rows, ks, PILOT_TRIALS, times=times, rng=1)
    clean = (pilot.censored_counts == 0) & np.isfinite(expected)
    if not np.any(clean):
        raise RuntimeError("pilot pass censored every row; grid is miscalibrated")
    z = np.abs(expected[clean] - pilot.means[clean]) / pilot.sems[clean]
    worst_z = float(np.max(z))
    if worst_z > 8.0:
        raise AssertionError(
            f"exact vs pilot Monte-Carlo disagree: worst z = {worst_z:.2f} > 8"
        )

    variances = (pilot.sems[clean] ** 2) * PILOT_TRIALS
    targets = (REL_TARGET * expected[clean]) ** 2
    required = int(np.ceil(np.max(variances / targets)))
    capped = min(max(required, PILOT_TRIALS), MAX_EQUAL_PRECISION_TRIALS)

    mc_seconds = best_of(
        lambda: estimate_coverage_time_mc(rows, ks, capped, times=times, rng=2),
        max(1, repeats // 2),
    )
    speedup = mc_seconds / exact_seconds

    report = {
        "benchmark": "exact coverage-time kernels vs equal-precision Monte-Carlo",
        "environment": environment_metadata(),
        "grid": {
            "rows": N_ROWS,
            "m_range": list(M_RANGE),
            "k_choices": list(K_CHOICES),
            "cdf_times": list(CDF_TIMES),
        },
        "precision": {
            "rel_target": REL_TARGET,
            "pilot_trials": PILOT_TRIALS,
            "required_trials": required,
            "timed_trials": capped,
            "trials_capped": required > capped,
            "pilot_worst_z": worst_z,
        },
        "exact_seconds": exact_seconds,
        "mc_seconds": mc_seconds,
        "speedup": speedup,
        "min_speedup_required": min_speedup,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"exact pass: {exact_seconds * 1e3:.1f} ms for {N_ROWS} rows "
        f"(E[T], partial E[T_j], {len(CDF_TIMES)}-point CDF)",
        f"equal-precision Monte-Carlo ({capped} trials, "
        f"rel target {REL_TARGET:.0%}): {mc_seconds * 1e3:.1f} ms",
        f"speedup: {speedup:.1f}x (pilot worst z = {worst_z:.2f})",
        f"artifact written to {output}",
    ]
    if required > capped:
        lines.insert(
            2,
            f"note: required {required} trials capped at {capped} — the "
            f"timed Monte-Carlo pass is *less* precise than requested, so "
            f"the speedup is understated",
        )
    return speedup >= min_speedup, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_covertime.json"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="Fail when the exact-vs-equal-precision-MC speedup drops below this.",
    )
    args = parser.parse_args(argv)

    ok, lines = run_coverage_time_bench(
        args.output, repeats=args.repeats, min_speedup=args.min_speedup
    )
    for line in lines:
        print(line)
    if not ok:
        print(
            f"FAIL: the exact coverage-time speedup fell below {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
