"""Benchmark / reproduction of Observation 1.

Paper reference: ``Cover(p*) > (1 - 1/e) * sum_{x <= k} f(x)`` — the optimal
symmetric (uncoordinated) coverage is within a factor ``1 - 1/e ~ 0.632`` of
the full-coordination optimum.

Shape checks: the bound holds on every instance of the sweep; the worst ratio
across the sweep stays above the bound, and near-tight instances (many equal
values with ``k`` large) approach but never cross it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.observation1 import observation1_experiment
from repro.core.optimal_coverage import observation1_lower_bound, optimal_coverage
from repro.core.values import SiteValues

BOUND = 1.0 - 1.0 / np.e


@pytest.mark.benchmark(group="observation1")
def test_observation1_sweep(benchmark):
    """Sweep of value families, M and k: the bound holds everywhere."""
    rows = benchmark(
        observation1_experiment,
        m_values=(5, 20, 100),
        k_values=(2, 3, 5, 10),
        n_random=3,
        rng=0,
    )
    assert rows
    assert all(row.holds for row in rows)
    worst = min(row.ratio for row in rows)
    assert worst > BOUND


@pytest.mark.benchmark(group="observation1")
def test_observation1_near_tight_instance(benchmark):
    """Uniform values with k = M is the near-tight regime for the bound."""
    values = SiteValues.uniform(64)

    def run():
        return optimal_coverage(values, 64), observation1_lower_bound(values, 64)

    cover, bound = benchmark(run)
    ratio = cover / values.top(64)
    # The ratio approaches 1 - (1 - 1/M)^M from above, i.e. stays above 1 - 1/e.
    assert BOUND < ratio < BOUND + 0.01
    assert cover > bound
