"""Load-generator benchmark for the online equilibrium service.

Closed-loop concurrent clients drive the serving layer in-process and the
script writes ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py --output BENCH_serving.json

Five phases:

* **naive** — every request of the workload is solved one at a time through
  the direct batch-of-one path (:func:`repro.serving.engine.evaluate_one`),
  i.e. what a per-request service without batching would do;
* **latency-vs-load curve** — the same workload driven through a
  :class:`~repro.serving.scheduler.ContinuousBatchScheduler` (cache
  disabled, so the gain measured is batching, not memoisation) at three
  closed-loop regimes: **low** (1 client — continuous batching must not tax
  a lone caller, gated by ``--max-latency-ratio``), **medium**
  (``--concurrency``/4 clients) and **saturating** (``--concurrency``
  clients — where accumulation pays, gated by ``--min-throughput-ratio``);
  per-request latencies give p50/p99 per regime;
* **executor identity** — a workload slice solved under every executor mode
  (inline / thread / process) and asserted payload-equal, exercising the
  bit-identity contract across execution strategies;
* **plan memo** — the same solve requests with the cross-call binomial-PMF
  plan memo enabled and disabled: answers must match elementwise and the
  enabled run must show a nonzero hit rate;
* **warm cache** — an expensive mechanism request is solved once (miss) and
  then re-requested with fresh request objects (parse + hash + LRU lookup
  each time), measuring the end-to-end warm-hit latency.

Every scheduled answer is asserted equal to the naive answer for the same
request — the service's bit-identity contract — so the artifact cannot
report a fast wrong answer.

The script exits non-zero when saturated throughput falls below
``--min-throughput-ratio`` times naive throughput (default 3x), when the
low-load p50 exceeds ``--max-latency-ratio`` times the naive p50 (default
1.5x — continuous batching must stay out of the way at low load), when the
warm-cache speedup falls below ``--min-cache-speedup`` (default 100x), or
when the plan memo records no hits — the acceptance bars the serving layer
was built against.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.values import SiteValues
from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.engine import evaluate_one
from repro.serving.executor import EXECUTOR_MODES
from repro.serving.requests import MechanismRequest, ServingRequest, SolveRequest, SweepRequest
from repro.utils.envinfo import environment_metadata
from repro.utils.memo import plan_memo

SEED = 20180503

#: Workload shape: ragged instances in the size range the experiment grids
#: use (all inside one power-of-two width bucket, see
#: ``ServingRequest.pad_width``), solve requests over two player counts,
#: sweeps over the analysis k-grid.  Requests only coalesce into one kernel
#: call when they share a ``group_key`` (kind, policy, ``k`` signature,
#: width bucket), so the group diversity here — 2 solve groups + 1 sweep
#: group — is part of what the benchmark measures: a maximally diverse
#: workload would degrade towards the naive path, a single-group workload
#: would overstate the win.
M_RANGE = (65, 128)
SOLVE_K_CHOICES = (3, 8)
SWEEP_K_GRID = (2, 3, 5, 8, 13, 21)

#: The warm-cache probe: one mechanism comparison whose IFD bisections make
#: the miss expensive enough that the hit/miss contrast is unambiguous.
CACHE_PROBE_M = 60
CACHE_PROBE_K = 6
CACHE_PROBE_POLICIES = ("exclusive", "sharing")

#: The plan-memo probe: sharing-policy solves, whose IFD bisections call the
#: binomial PMF once per inner iteration — the hot path the memo serves.
MEMO_PROBE_M = 24
MEMO_PROBE_K = 5
MEMO_PROBE_REQUESTS = 8


def build_workload(n_requests: int, rng: np.random.Generator) -> list[ServingRequest]:
    """Distinct solve/sweep requests (no duplicates, so caching cannot help)."""
    requests: list[ServingRequest] = []
    sizes = rng.integers(M_RANGE[0], M_RANGE[1], size=n_requests)
    for index, m in enumerate(sizes):
        values = SiteValues.random(int(m), rng)
        if index % 2 == 0:
            k = int(SOLVE_K_CHOICES[index % len(SOLVE_K_CHOICES)])
            requests.append(SolveRequest(values.as_array(), k=k, policy="exclusive"))
        else:
            requests.append(SweepRequest(values.as_array(), k_grid=SWEEP_K_GRID))
    return requests


def run_naive(requests: list[ServingRequest]) -> tuple[float, list[float], list[dict]]:
    """Per-request direct solving; returns (seconds, latencies, answers)."""
    latencies: list[float] = []
    answers: list[dict] = []
    start = time.perf_counter()
    for request in requests:
        t0 = time.perf_counter()
        answers.append(evaluate_one(request))
        latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - start, latencies, answers


async def _client(
    coalescer: BatchCoalescer,
    requests: list[ServingRequest],
    latencies: list[float],
    answers: dict[int, dict],
    offsets: list[int],
) -> None:
    """One closed-loop client: submit, await, record, next."""
    for index in offsets:
        t0 = time.perf_counter()
        answers[index] = await coalescer.submit(requests[index])
        latencies.append(time.perf_counter() - t0)


async def run_scheduled(
    requests: list[ServingRequest],
    concurrency: int,
    max_batch: int,
    max_wait_ms: float,
    *,
    executor: str | None = None,
) -> tuple[float, list[float], dict[int, dict], dict]:
    """The same workload through the scheduler under closed-loop concurrency."""
    coalescer = BatchCoalescer(
        max_batch=max_batch, max_wait_ms=max_wait_ms, cache=None, executor=executor
    )
    latencies: list[float] = []
    answers: dict[int, dict] = {}
    # Round-robin assignment keeps every client busy until the tail.
    offsets = [list(range(c, len(requests), concurrency)) for c in range(concurrency)]
    start = time.perf_counter()
    await asyncio.gather(
        *(_client(coalescer, requests, latencies, answers, chunk) for chunk in offsets)
    )
    elapsed = time.perf_counter() - start
    await coalescer.close()
    return elapsed, latencies, answers, coalescer.stats()


async def run_executor_identity(requests: list[ServingRequest]) -> dict:
    """Solve one workload slice under every executor mode; assert payload equality."""
    answers: dict[str, list[dict]] = {}
    seconds: dict[str, float] = {}
    for mode in EXECUTOR_MODES:
        coalescer = BatchCoalescer(max_batch=16, max_wait_ms=2.0, cache=None, executor=mode)
        t0 = time.perf_counter()
        answers[mode] = list(
            await asyncio.gather(*(coalescer.submit(request) for request in requests))
        )
        seconds[mode] = time.perf_counter() - t0
        await coalescer.close()
    for mode in EXECUTOR_MODES[1:]:
        assert answers[mode] == answers["inline"], (
            f"executor mode {mode!r} returned different payloads than inline"
        )
    return {
        "requests": len(requests),
        "modes": list(EXECUTOR_MODES),
        "seconds": seconds,
        "identical": True,
    }


def run_memo_phase() -> dict:
    """Plan-memo probe: memo-on vs memo-off answers identical, nonzero hit rate."""
    rng = np.random.default_rng(SEED + 13)
    requests = [
        SolveRequest(
            SiteValues.random(MEMO_PROBE_M, rng).as_array(), k=MEMO_PROBE_K, policy="sharing"
        )
        for _ in range(MEMO_PROBE_REQUESTS)
    ]
    plan_memo.clear()
    plan_memo.reset_counters()
    t0 = time.perf_counter()
    answers_on = [evaluate_one(request) for request in requests]
    memo_on_seconds = time.perf_counter() - t0
    stats = plan_memo.stats()
    with plan_memo.disabled():
        t0 = time.perf_counter()
        answers_off = [evaluate_one(request) for request in requests]
        memo_off_seconds = time.perf_counter() - t0
    assert answers_on == answers_off, "plan memo changed an answer"
    return {
        "probe": {"m": MEMO_PROBE_M, "k": MEMO_PROBE_K, "policy": "sharing"},
        "requests": MEMO_PROBE_REQUESTS,
        "memo_on_seconds": memo_on_seconds,
        "memo_off_seconds": memo_off_seconds,
        "identical_with_memo_off": True,
        "stats": stats,
    }


async def run_cache_phase(n_hits: int) -> dict:
    """Warm-cache probe: one expensive miss, then ``n_hits`` fresh-object hits."""
    rng = np.random.default_rng(SEED + 7)
    values = SiteValues.random(CACHE_PROBE_M, rng).as_array()

    def probe() -> MechanismRequest:
        # A fresh object per hit: the timing includes request canonicalisation
        # and key hashing, i.e. the full warm path a served request takes.
        return MechanismRequest(values, k=CACHE_PROBE_K, policies=CACHE_PROBE_POLICIES)

    cache = ResultCache(64)
    coalescer = BatchCoalescer(max_batch=8, max_wait_ms=0.0, cache=cache)
    t0 = time.perf_counter()
    miss_answer = await coalescer.submit(probe())
    miss_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n_hits):
        hit_answer = await coalescer.submit(probe())
    hit_seconds = (time.perf_counter() - t0) / n_hits
    assert hit_answer == miss_answer, "cache returned a different answer"
    await coalescer.close()
    return {
        "probe": {
            "m": CACHE_PROBE_M,
            "k": CACHE_PROBE_K,
            "policies": list(CACHE_PROBE_POLICIES),
        },
        "miss_seconds": miss_seconds,
        "hit_seconds": hit_seconds,
        "speedup": miss_seconds / hit_seconds,
        "hits_timed": n_hits,
        "stats": cache.stats(),
    }


def percentile_ms(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def run_serving_bench(
    output: Path,
    *,
    n_requests: int = 256,
    concurrency: int = 32,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    repeats: int = 3,
    n_cache_hits: int = 500,
    min_throughput_ratio: float = 3.0,
    max_latency_ratio: float = 1.5,
    min_cache_speedup: float = 100.0,
) -> tuple[bool, list[str]]:
    """Run all phases, write the artifact, return (ok, report lines)."""
    rng = np.random.default_rng(SEED)
    requests = build_workload(n_requests, rng)

    evaluate_one(requests[0])  # warm-up: first-call numpy/dispatch overhead

    naive_seconds, naive_latencies, naive_answers = None, None, None
    for _ in range(max(1, repeats)):
        seconds, latencies, answers = run_naive(requests)
        if naive_seconds is None or seconds < naive_seconds:
            naive_seconds, naive_latencies, naive_answers = seconds, latencies, answers

    # Latency-vs-load curve: best-of-repeats per closed-loop regime.  The
    # saturating regime doubles as the legacy throughput comparison.
    regimes = (
        ("low", 1),
        ("medium", max(2, concurrency // 4)),
        ("saturating", concurrency),
    )
    load_curve: dict[str, dict] = {}
    for name, clients in regimes:
        best = None
        for _ in range(max(1, repeats)):
            seconds, latencies, answers, stats = asyncio.run(
                run_scheduled(requests, clients, max_batch, max_wait_ms)
            )
            if best is None or seconds < best[0]:
                best = (seconds, latencies, answers, stats)
        seconds, latencies, answers, stats = best
        # Bit-identity at every load point: each scheduled answer equals the
        # direct per-request one.
        for index, naive_answer in enumerate(naive_answers):
            assert answers[index] == naive_answer, (
                f"scheduled answer differs from direct solve for request {index} "
                f"under the {name} regime"
            )
        load_curve[name] = {
            "concurrency": clients,
            "seconds": seconds,
            "throughput_rps": len(requests) / seconds,
            "latency_p50_ms": percentile_ms(latencies, 50),
            "latency_p99_ms": percentile_ms(latencies, 99),
            "batches": stats["batches"],
            "mean_batch_size": stats["mean_batch_size"],
            "largest_batch": stats["largest_batch"],
        }

    executor_report = asyncio.run(run_executor_identity(requests[: min(16, len(requests))]))
    memo_report = run_memo_phase()
    cache_report = asyncio.run(run_cache_phase(n_cache_hits))

    naive_rps = len(requests) / naive_seconds
    saturated = load_curve["saturating"]
    ratio = saturated["throughput_rps"] / naive_rps
    naive_p50 = percentile_ms(naive_latencies, 50)
    latency_ratio = load_curve["low"]["latency_p50_ms"] / naive_p50
    report = {
        "benchmark": "continuous batching vs naive per-request serving",
        "environment": environment_metadata(),
        "workload": {
            "requests": len(requests),
            "m_range": list(M_RANGE),
            "solve_k_choices": list(SOLVE_K_CHOICES),
            "sweep_k_grid": list(SWEEP_K_GRID),
            "concurrency": concurrency,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "repeats": repeats,
        },
        "naive": {
            "seconds": naive_seconds,
            "throughput_rps": naive_rps,
            "latency_p50_ms": naive_p50,
            "latency_p99_ms": percentile_ms(naive_latencies, 99),
        },
        "load_curve": load_curve,
        "coalesced": dict(saturated),  # legacy name: the saturated regime
        "throughput_ratio": ratio,
        "low_load_latency_ratio": latency_ratio,
        "executor_identity": executor_report,
        "plan_memo": memo_report,
        "cache": cache_report,
        "min_throughput_ratio_required": min_throughput_ratio,
        "max_latency_ratio_required": max_latency_ratio,
        "min_cache_speedup_required": min_cache_speedup,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        "serving load curve: "
        + "; ".join(
            f"{name} (c={point['concurrency']}): {point['throughput_rps']:.0f} rps, "
            f"p50 {point['latency_p50_ms']:.2f} ms, mean batch {point['mean_batch_size']:.1f}"
            for name, point in load_curve.items()
        ),
        f"serving naive: {naive_seconds * 1e3:.1f} ms ({naive_rps:.0f} rps, "
        f"p50 {naive_p50:.2f} ms) -> saturated/naive throughput {ratio:.1f}x, "
        f"low-load p50 ratio {latency_ratio:.2f}x",
        f"serving executors: {executor_report['modes']} identical payloads in "
        + ", ".join(f"{m} {s * 1e3:.0f} ms" for m, s in executor_report["seconds"].items()),
        f"serving plan memo: {memo_report['stats']['hits']} hits / "
        f"{memo_report['stats']['misses']} misses "
        f"(hit rate {memo_report['stats']['hit_rate']:.3f}), answers identical memo off",
        f"serving cache: miss {cache_report['miss_seconds'] * 1e3:.1f} ms, warm hit "
        f"{cache_report['hit_seconds'] * 1e6:.1f} us -> {cache_report['speedup']:.0f}x",
    ]
    ok = (
        ratio >= min_throughput_ratio
        and latency_ratio <= max_latency_ratio
        and cache_report["speedup"] >= min_cache_speedup
        and memo_report["stats"]["hits"] > 0
    )
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_serving.json"))
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--cache-hits", type=int, default=500)
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=3.0,
        help="Required saturated/naive throughput ratio.",
    )
    parser.add_argument(
        "--max-latency-ratio",
        type=float,
        default=1.5,
        help="Maximum allowed low-load p50 as a multiple of the naive p50.",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=100.0,
        help="Required warm-cache-hit vs solve speedup.",
    )
    args = parser.parse_args(argv)

    ok, lines = run_serving_bench(
        args.output,
        n_requests=args.requests,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        repeats=args.repeats,
        n_cache_hits=args.cache_hits,
        min_throughput_ratio=args.min_throughput_ratio,
        max_latency_ratio=args.max_latency_ratio,
        min_cache_speedup=args.min_cache_speedup,
    )
    for line in lines:
        print(line)
    print(f"artifact written to {args.output}")
    if not ok:
        print(
            f"FAIL: serving gates not met (need >= {args.min_throughput_ratio:.1f}x "
            f"saturated throughput, low-load p50 <= {args.max_latency_ratio:.1f}x naive, "
            f">= {args.min_cache_speedup:.0f}x warm-cache speedup, nonzero memo hits)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
