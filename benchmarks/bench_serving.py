"""Load-generator benchmark for the online equilibrium service.

Closed-loop concurrent clients drive the serving layer in-process and the
script writes ``BENCH_serving.json``::

    PYTHONPATH=src python benchmarks/bench_serving.py --output BENCH_serving.json

Three phases:

* **naive** — every request of the workload is solved one at a time through
  the direct batch-of-one path (:func:`repro.serving.engine.evaluate_one`),
  i.e. what a per-request service without coalescing would do;
* **coalesced** — the same workload driven by ``--concurrency`` closed-loop
  asyncio clients through a :class:`~repro.serving.coalescer.BatchCoalescer`
  (cache disabled, so the gain measured is coalescing, not memoisation);
  per-request latencies give p50/p99;
* **warm cache** — an expensive mechanism request is solved once (miss) and
  then re-requested with fresh request objects (parse + hash + LRU lookup
  each time), measuring the end-to-end warm-hit latency.

Every coalesced answer is asserted equal to the naive answer for the same
request — the service's bit-identity contract — so the artifact cannot
report a fast wrong answer.

The script exits non-zero when coalesced throughput falls below
``--min-throughput-ratio`` times naive throughput (default 3x at concurrency
32) or the warm-cache speedup falls below ``--min-cache-speedup`` (default
100x) — the acceptance bars the serving layer was built against.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.values import SiteValues
from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.engine import evaluate_one
from repro.serving.requests import MechanismRequest, ServingRequest, SolveRequest, SweepRequest
from repro.utils.envinfo import environment_metadata

SEED = 20180503

#: Workload shape: ragged instances in the size range the experiment grids
#: use (all inside one power-of-two width bucket, see
#: ``ServingRequest.pad_width``), solve requests over two player counts,
#: sweeps over the analysis k-grid.  Requests only coalesce into one kernel
#: call when they share a ``group_key`` (kind, policy, ``k`` signature,
#: width bucket), so the group diversity here — 2 solve groups + 1 sweep
#: group — is part of what the benchmark measures: a maximally diverse
#: workload would degrade towards the naive path, a single-group workload
#: would overstate the win.
M_RANGE = (65, 128)
SOLVE_K_CHOICES = (3, 8)
SWEEP_K_GRID = (2, 3, 5, 8, 13, 21)

#: The warm-cache probe: one mechanism comparison whose IFD bisections make
#: the miss expensive enough that the hit/miss contrast is unambiguous.
CACHE_PROBE_M = 60
CACHE_PROBE_K = 6
CACHE_PROBE_POLICIES = ("exclusive", "sharing")


def build_workload(n_requests: int, rng: np.random.Generator) -> list[ServingRequest]:
    """Distinct solve/sweep requests (no duplicates, so caching cannot help)."""
    requests: list[ServingRequest] = []
    sizes = rng.integers(M_RANGE[0], M_RANGE[1], size=n_requests)
    for index, m in enumerate(sizes):
        values = SiteValues.random(int(m), rng)
        if index % 2 == 0:
            k = int(SOLVE_K_CHOICES[index % len(SOLVE_K_CHOICES)])
            requests.append(SolveRequest(values.as_array(), k=k, policy="exclusive"))
        else:
            requests.append(SweepRequest(values.as_array(), k_grid=SWEEP_K_GRID))
    return requests


def run_naive(requests: list[ServingRequest]) -> tuple[float, list[float], list[dict]]:
    """Per-request direct solving; returns (seconds, latencies, answers)."""
    latencies: list[float] = []
    answers: list[dict] = []
    start = time.perf_counter()
    for request in requests:
        t0 = time.perf_counter()
        answers.append(evaluate_one(request))
        latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - start, latencies, answers


async def _client(
    coalescer: BatchCoalescer,
    requests: list[ServingRequest],
    latencies: list[float],
    answers: dict[int, dict],
    offsets: list[int],
) -> None:
    """One closed-loop client: submit, await, record, next."""
    for index in offsets:
        t0 = time.perf_counter()
        answers[index] = await coalescer.submit(requests[index])
        latencies.append(time.perf_counter() - t0)


async def run_coalesced(
    requests: list[ServingRequest], concurrency: int, max_batch: int, max_wait_ms: float
) -> tuple[float, list[float], dict[int, dict], dict]:
    """The same workload through the coalescer under closed-loop concurrency."""
    coalescer = BatchCoalescer(max_batch=max_batch, max_wait_ms=max_wait_ms, cache=None)
    latencies: list[float] = []
    answers: dict[int, dict] = {}
    # Round-robin assignment keeps every client busy until the tail.
    offsets = [list(range(c, len(requests), concurrency)) for c in range(concurrency)]
    start = time.perf_counter()
    await asyncio.gather(
        *(_client(coalescer, requests, latencies, answers, chunk) for chunk in offsets)
    )
    elapsed = time.perf_counter() - start
    await coalescer.close()
    return elapsed, latencies, answers, coalescer.stats()


async def run_cache_phase(n_hits: int) -> dict:
    """Warm-cache probe: one expensive miss, then ``n_hits`` fresh-object hits."""
    rng = np.random.default_rng(SEED + 7)
    values = SiteValues.random(CACHE_PROBE_M, rng).as_array()

    def probe() -> MechanismRequest:
        # A fresh object per hit: the timing includes request canonicalisation
        # and key hashing, i.e. the full warm path a served request takes.
        return MechanismRequest(values, k=CACHE_PROBE_K, policies=CACHE_PROBE_POLICIES)

    cache = ResultCache(64)
    coalescer = BatchCoalescer(max_batch=8, max_wait_ms=0.0, cache=cache)
    t0 = time.perf_counter()
    miss_answer = await coalescer.submit(probe())
    miss_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n_hits):
        hit_answer = await coalescer.submit(probe())
    hit_seconds = (time.perf_counter() - t0) / n_hits
    assert hit_answer == miss_answer, "cache returned a different answer"
    await coalescer.close()
    return {
        "probe": {
            "m": CACHE_PROBE_M,
            "k": CACHE_PROBE_K,
            "policies": list(CACHE_PROBE_POLICIES),
        },
        "miss_seconds": miss_seconds,
        "hit_seconds": hit_seconds,
        "speedup": miss_seconds / hit_seconds,
        "hits_timed": n_hits,
        "stats": cache.stats(),
    }


def percentile_ms(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q) * 1e3)


def run_serving_bench(
    output: Path,
    *,
    n_requests: int = 256,
    concurrency: int = 32,
    max_batch: int = 32,
    max_wait_ms: float = 2.0,
    repeats: int = 3,
    n_cache_hits: int = 500,
    min_throughput_ratio: float = 3.0,
    min_cache_speedup: float = 100.0,
) -> tuple[bool, list[str]]:
    """Run all three phases, write the artifact, return (ok, report lines)."""
    rng = np.random.default_rng(SEED)
    requests = build_workload(n_requests, rng)

    evaluate_one(requests[0])  # warm-up: first-call numpy/dispatch overhead

    naive_seconds, naive_latencies, naive_answers = None, None, None
    for _ in range(max(1, repeats)):
        seconds, latencies, answers = run_naive(requests)
        if naive_seconds is None or seconds < naive_seconds:
            naive_seconds, naive_latencies, naive_answers = seconds, latencies, answers

    coalesced_seconds = None
    for _ in range(max(1, repeats)):
        seconds, latencies, answers, stats = asyncio.run(
            run_coalesced(requests, concurrency, max_batch, max_wait_ms)
        )
        if coalesced_seconds is None or seconds < coalesced_seconds:
            coalesced_seconds, coalesced_latencies = seconds, latencies
            coalesced_answers, coalesced_stats = answers, stats

    # Bit-identity: every coalesced answer equals the direct per-request one.
    for index, naive_answer in enumerate(naive_answers):
        assert coalesced_answers[index] == naive_answer, (
            f"coalesced answer differs from direct solve for request {index}"
        )

    cache_report = asyncio.run(run_cache_phase(n_cache_hits))

    naive_rps = len(requests) / naive_seconds
    coalesced_rps = len(requests) / coalesced_seconds
    ratio = coalesced_rps / naive_rps
    report = {
        "benchmark": "coalesced vs naive per-request serving",
        "environment": environment_metadata(),
        "workload": {
            "requests": len(requests),
            "m_range": list(M_RANGE),
            "solve_k_choices": list(SOLVE_K_CHOICES),
            "sweep_k_grid": list(SWEEP_K_GRID),
            "concurrency": concurrency,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "repeats": repeats,
        },
        "naive": {
            "seconds": naive_seconds,
            "throughput_rps": naive_rps,
            "latency_p50_ms": percentile_ms(naive_latencies, 50),
            "latency_p99_ms": percentile_ms(naive_latencies, 99),
        },
        "coalesced": {
            "seconds": coalesced_seconds,
            "throughput_rps": coalesced_rps,
            "latency_p50_ms": percentile_ms(coalesced_latencies, 50),
            "latency_p99_ms": percentile_ms(coalesced_latencies, 99),
            "batches": coalesced_stats["batches"],
            "mean_batch_size": coalesced_stats["mean_batch_size"],
            "largest_batch": coalesced_stats["largest_batch"],
        },
        "throughput_ratio": ratio,
        "cache": cache_report,
        "min_throughput_ratio_required": min_throughput_ratio,
        "min_cache_speedup_required": min_cache_speedup,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"serving coalesced: {len(requests)} requests at concurrency {concurrency} "
        f"in {coalesced_seconds * 1e3:.1f} ms ({coalesced_rps:.0f} rps, "
        f"p50 {report['coalesced']['latency_p50_ms']:.2f} ms / "
        f"p99 {report['coalesced']['latency_p99_ms']:.2f} ms, "
        f"mean batch {coalesced_stats['mean_batch_size']:.1f})",
        f"serving naive: {naive_seconds * 1e3:.1f} ms ({naive_rps:.0f} rps) "
        f"-> coalesced/naive throughput {ratio:.1f}x",
        f"serving cache: miss {cache_report['miss_seconds'] * 1e3:.1f} ms, warm hit "
        f"{cache_report['hit_seconds'] * 1e6:.1f} us -> {cache_report['speedup']:.0f}x",
    ]
    ok = ratio >= min_throughput_ratio and cache_report["speedup"] >= min_cache_speedup
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_serving.json"))
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--cache-hits", type=int, default=500)
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=3.0,
        help="Required coalesced/naive throughput ratio.",
    )
    parser.add_argument(
        "--min-cache-speedup",
        type=float,
        default=100.0,
        help="Required warm-cache-hit vs solve speedup.",
    )
    args = parser.parse_args(argv)

    ok, lines = run_serving_bench(
        args.output,
        n_requests=args.requests,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        repeats=args.repeats,
        n_cache_hits=args.cache_hits,
        min_throughput_ratio=args.min_throughput_ratio,
        min_cache_speedup=args.min_cache_speedup,
    )
    for line in lines:
        print(line)
    print(f"artifact written to {args.output}")
    if not ok:
        print(
            f"FAIL: serving gates not met (need >= {args.min_throughput_ratio:.1f}x "
            f"throughput and >= {args.min_cache_speedup:.0f}x warm-cache speedup)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
