"""Mechanism comparison benchmarks: congestion design vs reward (grant) design.

Ablation backing Section 1.6 of the paper: the exclusive congestion policy and
the Kleinberg-Oren style reward design both implement the coverage-optimal
distribution, but the congestion route does so without re-pricing the sites
and without knowing the number of players.  The two-level sweep benchmark is
the ablation showing that within the ``C_c`` family the best collision payoff
is exactly ``c = 0``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.values import SiteValues
from repro.mechanism import best_two_level_policy, compare_policies, optimal_grant_design

VALUES = SiteValues.zipf(15, exponent=0.9)
K = 5


@pytest.mark.benchmark(group="mechanism")
def test_grant_design_recovers_optimum(benchmark):
    design = benchmark(optimal_grant_design, VALUES, K)
    assert design.max_deviation < 1e-6
    assert design.induced_coverage == pytest.approx(optimal_coverage(VALUES, K), abs=1e-7)


@pytest.mark.benchmark(group="mechanism")
def test_congestion_design_matches_grant_design(benchmark):
    """Both levers land on the same coverage; the congestion one needs no re-pricing."""

    def run():
        exclusive = ideal_free_distribution(VALUES, K, ExclusivePolicy())
        grants = optimal_grant_design(VALUES, K)
        return coverage(VALUES, exclusive.strategy, K), grants.induced_coverage

    exclusive_cover, grant_cover = benchmark(run)
    assert exclusive_cover == pytest.approx(grant_cover, abs=1e-6)
    # Both beat the untouched sharing equilibrium.
    sharing = ideal_free_distribution(VALUES, K, SharingPolicy())
    assert exclusive_cover > coverage(VALUES, sharing.strategy, K)


@pytest.mark.benchmark(group="mechanism")
def test_two_level_ablation_best_c_is_zero(benchmark):
    best_c, rows = benchmark(
        best_two_level_policy, VALUES, K, c_grid=np.linspace(-0.5, 0.5, 21)
    )
    assert best_c == pytest.approx(0.0, abs=1e-9)
    coverages = [row.equilibrium_coverage for row in rows]
    assert max(coverages) == pytest.approx(optimal_coverage(VALUES, K), abs=1e-7)


@pytest.mark.benchmark(group="mechanism")
def test_policy_comparison_table(benchmark):
    from repro.analysis.spoa_experiments import default_policy_roster

    rows = benchmark(compare_policies, VALUES, K, default_policy_roster())
    by_name = {row.policy_name: row for row in rows}
    assert by_name["exclusive"].spoa == pytest.approx(1.0, abs=1e-9)
    assert all(row.spoa >= 1.0 - 1e-9 for row in rows)
