"""Solver-scaling benchmarks (ablation of closed form vs numerical IFD).

Not a paper figure — these benchmarks quantify two design choices recorded in
``DESIGN.md``:

* the closed-form ``sigma_star`` handles instances with 10^4-10^5 sites in
  milliseconds, while the general nested-bisection IFD solver pays roughly two
  orders of magnitude more (it is there for *arbitrary* congestion policies);
* solver cost grows mildly with the number of players ``k`` (the binomial
  expansion is the only ``k``-dependent term).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifd import ideal_free_distribution
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues


@pytest.mark.benchmark(group="scaling-sigma-star")
@pytest.mark.parametrize("m", [100, 10_000, 100_000])
def test_sigma_star_scaling_in_m(benchmark, m):
    values = SiteValues.zipf(m, exponent=1.1)
    result = benchmark(sigma_star, values, 32)
    assert result.strategy.as_array().sum() == pytest.approx(1.0, abs=1e-8)


@pytest.mark.benchmark(group="scaling-sigma-star")
@pytest.mark.parametrize("k", [2, 32, 512])
def test_sigma_star_scaling_in_k(benchmark, large_instance, k):
    result = benchmark(sigma_star, large_instance, k)
    assert 1 <= result.support_size <= large_instance.m


@pytest.mark.benchmark(group="scaling-ifd")
@pytest.mark.parametrize("m", [10, 100, 1_000])
def test_numerical_ifd_scaling_in_m(benchmark, m):
    values = SiteValues.zipf(m, exponent=1.0)
    result = benchmark(
        ideal_free_distribution, values, 8, SharingPolicy(), max_outer_iter=120
    )
    assert result.converged


@pytest.mark.benchmark(group="scaling-ifd")
def test_numerical_vs_closed_form_same_answer(benchmark):
    """Ablation: the general solver reproduces the closed form, at higher cost."""
    values = SiteValues.zipf(500, exponent=1.0)

    def run():
        return ideal_free_distribution(values, 8, ExclusivePolicy(), use_closed_form=False)

    numeric = benchmark(run)
    closed = sigma_star(values, 8)
    assert numeric.strategy.total_variation(closed.strategy) < 1e-6


@pytest.mark.benchmark(group="scaling-ifd")
@pytest.mark.parametrize("k", [2, 16, 128])
def test_numerical_ifd_scaling_in_k(benchmark, k):
    values = SiteValues.zipf(100, exponent=1.0)
    result = benchmark(ideal_free_distribution, values, k, SharingPolicy())
    assert result.strategy.as_array().sum() == pytest.approx(1.0, abs=1e-6)
