"""Smoke benchmark: batched stochastic kernels vs scalar loops, as a JSON artifact.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/bench_mc.py --output BENCH_mc.json

Three comparisons are timed, one per batched stochastic family:

* ``simulate_dispersal_batch`` (:mod:`repro.batch.simulation`) vs a loop of
  scalar :class:`~repro.simulation.engine.DispersalSimulator` runs — the
  Monte-Carlo calibration-sweep regime: many ragged instances with mixed
  per-row ``k``, a moderate trial count each;
* ``simulate_search_batch`` (:mod:`repro.batch.search`) vs a loop of scalar
  :func:`~repro.search.simulator.simulate_search` calls over a mixed
  strategy roster;
* ``optimal_grant_design_batch`` (:mod:`repro.batch.mechanism`) vs a loop of
  scalar :func:`~repro.mechanism.kleinberg_oren.optimal_grant_design` calls
  (each a full nested-bisection IFD solve of the re-priced game).

Each comparison includes a correctness spot check (the artifact can never
report a fast wrong answer).  The script exits non-zero when any family's
speedup falls below ``--min-speedup`` (default 5x) — the acceptance bar the
batched stochastic layer was built against, enforced as a CI gate via
``smoke_batch.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.utils.envinfo import environment_metadata

from repro.batch import (
    PaddedValues,
    coverage_batch,
    optimal_grant_design_batch,
    simulate_dispersal_batch,
    simulate_search_batch,
)
from repro.batch.search import as_prior_batch, as_search_strategy_batch
from repro.core.policies import SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues
from repro.mechanism import optimal_grant_design
from repro.search import (
    BayesianSearchProblem,
    proportional_strategy,
    simulate_search,
    uniform_strategy,
)
from repro.simulation import DispersalSimulator

SEED = 20180503

#: Simulation grid: many ragged instances, mixed per-row k, moderate trials —
#: the Monte-Carlo calibration-sweep regime the experiment harness runs.
SIM_N_INSTANCES = 512
SIM_M_RANGE = (5, 16)
SIM_K_CHOICES = (2, 3, 4)
SIM_N_TRIALS = 64

#: Search grid.
SEARCH_N_PROBLEMS = 384
SEARCH_M_RANGE = (5, 20)
SEARCH_K_CHOICES = (2, 4, 8)
SEARCH_N_TRIALS = 384
SEARCH_MAX_ROUNDS = 200

#: Mechanism (grant-design) grid.
MECH_N_INSTANCES = 48
MECH_M_RANGE = (4, 10)
MECH_K_CHOICES = (2, 3, 5)


def best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def ragged_instances(rng, count, m_range) -> list[SiteValues]:
    return [
        SiteValues.random(int(m), rng, low=0.1, high=3.0)
        for m in rng.integers(m_range[0], m_range[1], size=count)
    ]


def bench_simulation(rng, repeats: int) -> dict:
    instances = ragged_instances(rng, SIM_N_INSTANCES, SIM_M_RANGE)
    padded = PaddedValues.from_instances(instances)
    ks = rng.choice(SIM_K_CHOICES, size=len(instances)).astype(np.int64)
    strategies = np.zeros(padded.values.shape)
    for index, values in enumerate(instances):
        strategies[index, : values.m] = sigma_star(values, int(ks[index])).strategy.as_array()
    policy = SharingPolicy()

    simulate_dispersal_batch(padded, strategies, ks, policy, SIM_N_TRIALS, 0)  # warm-up
    batched = best_of(
        lambda: simulate_dispersal_batch(padded, strategies, ks, policy, SIM_N_TRIALS, 0),
        repeats,
    )
    simulators = [
        DispersalSimulator(values, int(ks[i]), policy) for i, values in enumerate(instances)
    ]
    row_strategies = [
        strategies[i, : values.m] for i, values in enumerate(instances)
    ]
    from repro.core.strategy import Strategy

    row_strategies = [Strategy(row) for row in row_strategies]
    looped = best_of(
        lambda: [
            simulator.run(strategy, SIM_N_TRIALS, i)
            for i, (simulator, strategy) in enumerate(zip(simulators, row_strategies))
        ],
        max(1, repeats // 2),
    )

    # Correctness spot check: batched means sit within Monte-Carlo error of
    # the exact coverage of every checked row.
    batch = simulate_dispersal_batch(padded, strategies, ks, policy, 4_000, 1)
    unique_ks = np.unique(ks)
    columns = np.searchsorted(unique_ks, ks)
    exact = coverage_batch(padded, strategies, unique_ks)[
        np.arange(len(instances)), columns
    ]
    for index in (0, len(instances) // 2, len(instances) - 1):
        sem = max(float(batch.coverage_sems[index]), 1e-9)
        assert abs(float(batch.coverage_means[index]) - float(exact[index])) < 8 * sem

    return {
        "grid": {
            "instances": len(instances),
            "m_range": list(SIM_M_RANGE),
            "k_choices": list(SIM_K_CHOICES),
            "n_trials": SIM_N_TRIALS,
        },
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def bench_search(rng, repeats: int) -> dict:
    problems = [
        BayesianSearchProblem.from_weights(rng.uniform(0.1, 2.0, int(m)))
        for m in rng.integers(SEARCH_M_RANGE[0], SEARCH_M_RANGE[1], size=SEARCH_N_PROBLEMS)
    ]
    ks = rng.choice(SEARCH_K_CHOICES, size=len(problems)).astype(np.int64)
    strategies = [
        uniform_strategy(problem) if index % 2 else proportional_strategy(problem)
        for index, problem in enumerate(problems)
    ]
    priors = as_prior_batch(problems)
    matrix = as_search_strategy_batch(strategies, priors)
    options = dict(max_rounds=SEARCH_MAX_ROUNDS)

    simulate_search_batch(priors, matrix, ks, SEARCH_N_TRIALS, rng=0, **options)  # warm-up
    batched = best_of(
        lambda: simulate_search_batch(priors, matrix, ks, SEARCH_N_TRIALS, rng=0, **options),
        repeats,
    )
    looped = best_of(
        lambda: [
            simulate_search(problem, strategy, int(ks[i]), SEARCH_N_TRIALS, rng=i, **options)
            for i, (problem, strategy) in enumerate(zip(problems, strategies))
        ],
        max(1, repeats // 2),
    )

    # Correctness spot check: empirical round-one rates track the closed form.
    from repro.batch import success_probability_batch

    batch = simulate_search_batch(priors, matrix, ks, 4_000, rng=1, **options)
    expected = success_probability_batch(priors, matrix, ks)
    for index in (0, len(problems) // 2, len(problems) - 1):
        sem = float(np.sqrt(expected[index] * (1 - expected[index]) / 4_000))
        assert abs(float(batch.round_one_success_rates[index]) - float(expected[index])) < 8 * max(sem, 1e-9)

    return {
        "grid": {
            "problems": len(problems),
            "m_range": list(SEARCH_M_RANGE),
            "k_choices": list(SEARCH_K_CHOICES),
            "n_trials": SEARCH_N_TRIALS,
            "max_rounds": SEARCH_MAX_ROUNDS,
        },
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def bench_mechanism(rng, repeats: int) -> dict:
    instances = ragged_instances(rng, MECH_N_INSTANCES, MECH_M_RANGE)
    padded = PaddedValues.from_instances(instances)
    ks = rng.choice(MECH_K_CHOICES, size=len(instances)).astype(np.int64)
    policy = SharingPolicy()

    optimal_grant_design_batch(padded, ks, policy)  # warm-up
    batched = best_of(lambda: optimal_grant_design_batch(padded, ks, policy), repeats)
    looped = best_of(
        lambda: [
            optimal_grant_design(values, int(ks[i]), policy)
            for i, values in enumerate(instances)
        ],
        max(1, repeats // 2),
    )

    batch = optimal_grant_design_batch(padded, ks, policy)
    for index in (0, len(instances) // 2, len(instances) - 1):
        scalar = optimal_grant_design(instances[index], int(ks[index]), policy)
        np.testing.assert_allclose(
            batch.rewards[index, : instances[index].m], scalar.rewards, atol=1e-8
        )
        np.testing.assert_allclose(
            batch.induced_coverages[index], scalar.induced_coverage, atol=1e-6
        )

    return {
        "grid": {
            "instances": len(instances),
            "m_range": list(MECH_M_RANGE),
            "k_choices": list(MECH_K_CHOICES),
        },
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def run_mc_bench(output: Path, *, repeats: int, min_speedup: float) -> tuple[bool, list[str]]:
    """Time the three stochastic families and write the artifact; returns (ok, lines)."""
    rng = np.random.default_rng(SEED)
    families = {
        "simulation": bench_simulation(rng, repeats),
        "search": bench_search(rng, repeats),
        "mechanism": bench_mechanism(rng, repeats),
    }
    report = {
        "benchmark": "batched stochastic kernels vs scalar loops",
        "environment": environment_metadata(),
        "min_speedup_required": min_speedup,
        "families": families,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")

    ok = True
    lines = []
    for name, entry in families.items():
        speedup = entry["speedup"]
        lines.append(
            f"{name}: batched {entry['batched_seconds'] * 1e3:.1f} ms, "
            f"looped {entry['looped_seconds'] * 1e3:.1f} ms -> {speedup:.1f}x"
        )
        if speedup < min_speedup:
            ok = False
    lines.append(f"artifact written to {output}")
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_mc.json"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="Fail when any family's batched-vs-looped speedup drops below this.",
    )
    args = parser.parse_args(argv)

    ok, lines = run_mc_bench(args.output, repeats=args.repeats, min_speedup=args.min_speedup)
    for line in lines:
        print(line)
    if not ok:
        print(
            f"FAIL: a stochastic family's speedup fell below {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
