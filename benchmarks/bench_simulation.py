"""Monte-Carlo engine benchmarks: throughput and agreement with the exact formulas.

Not a paper figure — the simulator is the substrate used to cross-check every
analytic quantity.  The benchmark verifies that one hundred thousand simulated
games agree with the closed-form coverage/payoff (within Monte-Carlo error) and
measures the cost per game for growing ``k`` and ``M``.
"""

from __future__ import annotations

import pytest

from repro.core.coverage import coverage
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import individual_payoff
from repro.simulation import DispersalSimulator

N_TRIALS = 100_000


@pytest.mark.benchmark(group="simulation")
@pytest.mark.parametrize("k", [2, 8, 32])
def test_simulation_throughput_in_k(benchmark, k):
    values = SiteValues.zipf(20, exponent=1.0)
    star = sigma_star(values, k).strategy
    simulator = DispersalSimulator(values, k, ExclusivePolicy())

    result = benchmark(simulator.run, star, N_TRIALS, 0)
    exact = coverage(values, star, k)
    assert abs(result.coverage_mean - exact) < 6 * result.coverage_sem


@pytest.mark.benchmark(group="simulation")
@pytest.mark.parametrize("m", [10, 100, 1_000])
def test_simulation_throughput_in_m(benchmark, m):
    values = SiteValues.zipf(m, exponent=1.0)
    strategy = Strategy.proportional(values.as_array())
    simulator = DispersalSimulator(values, 8, SharingPolicy())

    result = benchmark(simulator.run, strategy, N_TRIALS // 10, 1)
    exact = individual_payoff(values, strategy, 8, SharingPolicy())
    assert abs(result.payoff_mean - exact) < 6 * max(result.payoff_sem, 1e-9)


@pytest.mark.benchmark(group="simulation")
def test_profile_simulation_cost(benchmark):
    values = SiteValues.zipf(15, exponent=1.0)
    star = sigma_star(values, 6).strategy
    strategies = [star] * 6
    simulator = DispersalSimulator(values, 6, ExclusivePolicy())

    result = benchmark(simulator.run_profile, strategies, N_TRIALS // 10, 2)
    assert result.player_payoff_means.shape == (6,)
