"""Benchmark / reproduction of Corollary 5, Theorem 6 and the sharing SPoA bound.

Shape checks:

* exclusive policy — per-instance SPoA equals 1 everywhere (Corollary 5);
* every non-exclusive policy — SPoA strictly above 1 on the Theorem 6
  adversarial instance (Theorem 6);
* sharing policy — randomized instance search never exceeds 2
  (Kleinberg-Oren / Vetta bound), and the constant policy's SPoA grows roughly
  like ``k`` on near-uniform values (the paper's introductory remark).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spoa_experiments import (
    default_policy_roster,
    sharing_spoa_upper_bound_check,
    spoa_experiment,
    theorem6_certificates,
)
from repro.core.policies import ConstantPolicy, ExclusivePolicy, SharingPolicy
from repro.core.spoa import spoa_instance, spoa_search
from repro.core.values import SiteValues


@pytest.mark.benchmark(group="spoa")
def test_corollary5_exclusive_spoa_is_one(benchmark):
    ratio, instance = benchmark(
        spoa_search,
        ExclusivePolicy(),
        k_values=(2, 3, 5, 8),
        m_values=(2, 5, 10, 25),
        n_random=10,
        rng=0,
    )
    assert ratio == pytest.approx(1.0, abs=1e-8)
    assert instance.equilibrium_coverage == pytest.approx(instance.optimal_coverage, rel=1e-8)


@pytest.mark.benchmark(group="spoa")
def test_theorem6_all_other_policies_above_one(benchmark):
    certificates = benchmark(theorem6_certificates, k=3)
    assert certificates["exclusive"] == pytest.approx(1.0, abs=1e-9)
    non_exclusive = {name: r for name, r in certificates.items() if name != "exclusive"}
    assert non_exclusive
    assert all(ratio > 1.0 for ratio in non_exclusive.values())


@pytest.mark.benchmark(group="spoa")
def test_sharing_spoa_bounded_by_two(benchmark):
    ratio = benchmark(
        sharing_spoa_upper_bound_check,
        k_values=(2, 3, 5, 8),
        m_values=(2, 5, 10),
        n_random=15,
        rng=1,
    )
    assert 1.0 < ratio <= 2.0


@pytest.mark.benchmark(group="spoa")
def test_constant_policy_spoa_grows_with_k(benchmark):
    """C == 1: SPoA ~ k on slowly decreasing values (Section 1.2 remark)."""
    values = SiteValues.slowly_decreasing(200, 16)

    def run():
        return [spoa_instance(values, k, ConstantPolicy()).ratio for k in (2, 4, 8, 16)]

    ratios = benchmark(run)
    assert np.all(np.diff(ratios) > 0)
    # Roughly linear in k: for k = 16 the ratio exceeds k/2.
    assert ratios[-1] > 8.0


@pytest.mark.benchmark(group="spoa")
def test_policy_roster_worst_case_table(benchmark):
    """The worst-case SPoA table across the whole policy roster (quick grid)."""
    rows = benchmark(
        spoa_experiment,
        policies=default_policy_roster(),
        m_values=(2, 5),
        k_values=(2, 3),
        n_random=3,
        rng=2,
    )
    by_name = {row.policy_name: row.worst_ratio for row in rows}
    assert by_name["exclusive"] == pytest.approx(1.0, abs=1e-8)
    assert by_name["sharing"] <= 2.0 + 1e-9
    assert all(
        ratio >= 1.0 - 1e-9 for ratio in by_name.values()
    ), "SPoA is at least 1 by definition"
