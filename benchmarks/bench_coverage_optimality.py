"""Benchmark / reproduction of Theorem 4 plus an ablation of the three optimisers.

Theorem 4: ``sigma_star`` is the unique maximiser of the coverage among all
symmetric strategies.  The benchmark compares the three independent routes to
the optimum implemented in the library (closed form, KKT water-filling,
projected gradient) — they must agree on the optimal coverage, and the closed
form must be the cheapest by a wide margin (that is the ablation's point).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage
from repro.core.optimal_coverage import (
    maximize_coverage_projected_gradient,
    maximize_coverage_waterfilling,
    optimal_coverage_strategy,
)
from repro.core.strategy import Strategy
from repro.core.values import SiteValues

K = 8


@pytest.mark.benchmark(group="coverage-optimality")
def test_closed_form_optimum(benchmark, zipf_instance):
    result = benchmark(optimal_coverage_strategy, zipf_instance, K)
    # Theorem 4 sanity: the optimum beats standard heuristics.
    for challenger in (
        Strategy.uniform(zipf_instance.m),
        Strategy.proportional(zipf_instance.as_array()),
        Strategy.uniform_over_top(zipf_instance.m, K),
    ):
        assert result.coverage >= coverage(zipf_instance, challenger, K)


@pytest.mark.benchmark(group="coverage-optimality")
def test_waterfilling_optimum(benchmark, zipf_instance):
    result = benchmark(maximize_coverage_waterfilling, zipf_instance, K)
    closed = optimal_coverage_strategy(zipf_instance, K)
    assert result.coverage == pytest.approx(closed.coverage, rel=1e-9)


@pytest.mark.benchmark(group="coverage-optimality")
def test_projected_gradient_optimum(benchmark, zipf_instance):
    result = benchmark(maximize_coverage_projected_gradient, zipf_instance, K)
    closed = optimal_coverage_strategy(zipf_instance, K)
    assert result.coverage == pytest.approx(closed.coverage, abs=1e-7)


@pytest.mark.benchmark(group="coverage-optimality")
def test_random_strategies_never_win(benchmark, zipf_instance):
    """Monte-Carlo side of Theorem 4: 1000 random strategies all lose to sigma_star."""
    rng = np.random.default_rng(0)
    best = optimal_coverage_strategy(zipf_instance, K).coverage

    def run():
        worst_gap = np.inf
        for _ in range(1000):
            challenger = Strategy.random(zipf_instance.m, rng)
            worst_gap = min(worst_gap, best - coverage(zipf_instance, challenger, K))
        return worst_gap

    gap = benchmark(run)
    assert gap >= -1e-9
