"""Benchmark / reproduction of Figure 1 (both panels).

Paper reference: Figure 1 plots the coverage of (i) the ESS, (ii) the optimal
symmetric strategy, and (iii) the welfare-maximising symmetric strategy for two
players on two sites (``f = (1, 0.3)`` and ``f = (1, 0.5)``) as the collision
payoff ``c`` ranges over ``[-0.5, 0.5]``.

Shape checks (the paper's qualitative claims):

* the ESS curve peaks exactly at ``c = 0`` (the exclusive policy) and meets the
  optimum there;
* it is strictly below the optimum for every ``c != 0``;
* the welfare-optimum curve meets the coverage optimum at ``c = 0.5`` (sharing,
  where total payoff equals coverage) and falls below it for negative ``c``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figure1 import figure1_data
from repro.core.values import SiteValues

WELFARE_GRID = 801


def _make_panel(second_value: float, c_grid: np.ndarray):
    return figure1_data(
        SiteValues.two_sites(second_value),
        2,
        c_grid=c_grid,
        welfare_grid_points=WELFARE_GRID,
    )


def _check_panel_shape(panel) -> None:
    assert panel.argmax_c == pytest.approx(0.0, abs=1e-12)
    assert panel.peak_gap == pytest.approx(0.0, abs=1e-9)
    away = np.abs(panel.c_grid) > 1e-9
    assert np.all(panel.ess_coverage[away] < panel.optimal_coverage - 1e-9)
    # Welfare optimum meets the coverage optimum at the sharing end (c = 0.5).
    sharing_index = int(np.argmin(np.abs(panel.c_grid - 0.5)))
    assert panel.welfare_optimum_coverage[sharing_index] == pytest.approx(
        panel.optimal_coverage, abs=1e-3
    )
    # ... and sits strictly below it at the aggressive end (c = -0.5).
    assert panel.welfare_optimum_coverage[0] < panel.optimal_coverage - 1e-3


@pytest.mark.benchmark(group="figure1")
def test_figure1_left_panel(benchmark, figure1_c_grid):
    """Figure 1, left panel: f = (1, 0.3), k = 2."""
    panel = benchmark(_make_panel, 0.3, figure1_c_grid)
    _check_panel_shape(panel)
    # Paper-scale values: optimum coverage for f2 = 0.3 is 1 + 0.3 - 0.3/1.3.
    assert panel.optimal_coverage == pytest.approx(1.3 - 0.3 / 1.3, abs=1e-12)


@pytest.mark.benchmark(group="figure1")
def test_figure1_right_panel(benchmark, figure1_c_grid):
    """Figure 1, right panel: f = (1, 0.5), k = 2."""
    panel = benchmark(_make_panel, 0.5, figure1_c_grid)
    _check_panel_shape(panel)
    assert panel.optimal_coverage == pytest.approx(1.5 - 0.5 / 1.5, abs=1e-12)


@pytest.mark.benchmark(group="figure1")
def test_figure1_extension_more_players(benchmark, figure1_c_grid):
    """Extension of Figure 1 beyond the paper: 4 players on 4 sites.

    The qualitative shape must persist: the ESS coverage is maximised at the
    exclusive policy and equals the optimal symmetric coverage there.
    """
    values = SiteValues.from_values([1.0, 0.6, 0.35, 0.2])

    def run():
        return figure1_data(values, 4, c_grid=figure1_c_grid, welfare_grid_points=201)

    panel = benchmark(run)
    assert panel.argmax_c == pytest.approx(0.0, abs=1e-12)
    assert panel.peak_gap == pytest.approx(0.0, abs=1e-9)
