"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's reported results (Figure 1 or a
theorem-level claim) or measures the cost of a core solver.  Benchmarks both
time the computation (pytest-benchmark) and assert the qualitative *shape* of
the result the paper reports — who wins, by roughly what factor, and where the
crossovers sit — so a benchmark run doubles as a reproduction check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.values import SiteValues


@pytest.fixture(scope="session")
def figure1_c_grid() -> np.ndarray:
    """Competition-extent grid used by the Figure 1 benchmarks (paper: [-0.5, 0.5])."""
    return np.linspace(-0.5, 0.5, 21)


@pytest.fixture(scope="session")
def zipf_instance() -> SiteValues:
    """Mid-sized Zipf value profile used by several benchmarks."""
    return SiteValues.zipf(50, exponent=1.0)


@pytest.fixture(scope="session")
def large_instance() -> SiteValues:
    """Large instance for solver-scaling benchmarks."""
    return SiteValues.zipf(20_000, exponent=1.1)
