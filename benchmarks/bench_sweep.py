"""Smoke benchmark: sweep-fabric scaling and warm-resume overhead, as JSON.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/bench_sweep.py --output BENCH_sweep.json

Two properties of the executor/store fabric are timed on the registered
``dynamics`` experiment (a serial-dominated grid: every task steps a batched
dynamics engine to convergence):

* **parallel scaling** — the same spec through the ``process`` executor at
  ``min(4, available_cpus())`` workers vs the serial executor; the gate is
  scaling *efficiency* (speedup / workers), so the bar adapts to however
  many CPUs the runner actually has;
* **warm resume** — a cold run writing every cell into a fresh
  :class:`~repro.experiments.store.ExperimentStore` vs an immediate re-run
  against the same store (every cell a hit, nothing recomputed).

Both comparisons assert bit-identical ``to_dict(timing=False)`` artifacts
before reporting a number (the artifact can never report a fast wrong
answer).  The script exits non-zero when scaling efficiency falls below
``--min-efficiency`` (default 0.7) or the warm-resume speedup falls below
``--min-resume-speedup`` (default 20x) — the acceptance bars the sweep
fabric was built against, enforced as CI gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.sweeps import build_dynamics_spec
from repro.experiments import ExperimentStore, run_experiment
from repro.utils.envinfo import available_cpus, environment_metadata

SEED = 20180503

#: The (family x M x k x init) grid of the benchmark spec: 54 trajectories
#: in small chunks, so every worker count up to 4 gets >= 2 chunks each.
GRID = dict(
    families=("uniform", "zipf", "geometric"),
    m_values=(8, 12),
    k_values=(2, 3, 5),
    inits=("uniform", "proportional", "random"),
    batch_rows=4,
)


def build_spec():
    return build_dynamics_spec(seed=SEED, **GRID)


def timed(fn, repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time plus the (identical) last return value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_scaling(workers: int, repeats: int) -> dict:
    spec = build_spec()
    serial_seconds, serial = timed(
        lambda: run_experiment(spec, executor="serial"), repeats
    )
    parallel_seconds, parallel = timed(
        lambda: run_experiment(spec, max_workers=workers, executor="process"), repeats
    )
    if serial.to_json(timing=False) != parallel.to_json(timing=False):
        raise AssertionError("parallel run is not bit-identical to serial")
    speedup = serial_seconds / parallel_seconds
    return {
        "grid": {**{k: list(v) for k, v in GRID.items() if k != "batch_rows"},
                 "batch_rows": GRID["batch_rows"], "n_tasks": spec.n_tasks},
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "efficiency": speedup / workers,
    }


def bench_resume(repeats: int) -> dict:
    spec = build_spec()
    baseline = run_experiment(spec, executor="serial")
    cold_best, warm_best = float("inf"), float("inf")
    hits = misses = 0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as root:
            store = ExperimentStore(root)
            start = time.perf_counter()
            cold = run_experiment(spec, executor="serial", store=store)
            cold_best = min(cold_best, time.perf_counter() - start)
            start = time.perf_counter()
            warm = run_experiment(spec, executor="serial", store=store)
            warm_best = min(warm_best, time.perf_counter() - start)
            hits = warm.metadata["runtime"]["store"]["hits"]
            misses = cold.metadata["runtime"]["store"]["misses"]
            for result, label in ((cold, "cold"), (warm, "warm")):
                if result.to_json(timing=False) != baseline.to_json(timing=False):
                    raise AssertionError(f"{label} store run is not bit-identical")
    if hits != spec.n_tasks or misses != spec.n_tasks:
        raise AssertionError(
            f"expected {spec.n_tasks} misses then hits, got {misses}/{hits}"
        )
    return {
        "n_tasks": spec.n_tasks,
        "cold_seconds": cold_best,
        "warm_seconds": warm_best,
        "speedup": cold_best / warm_best,
        "warm_hits": hits,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_sweep.json"))
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--min-efficiency",
        type=float,
        default=0.7,
        help="Fail when parallel speedup / workers drops below this.",
    )
    parser.add_argument(
        "--min-resume-speedup",
        type=float,
        default=20.0,
        help="Fail when a fully cached re-run is not at least this much faster.",
    )
    args = parser.parse_args(argv)

    workers = min(4, available_cpus())
    scaling = bench_scaling(workers, args.repeats)
    resume = bench_resume(args.repeats)

    report = {
        "benchmark": "sweep fabric: executor scaling and warm resume",
        "environment": environment_metadata(),
        "min_efficiency_required": args.min_efficiency,
        "min_resume_speedup_required": args.min_resume_speedup,
        "scaling": scaling,
        "resume": resume,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    failed = False
    print(
        f"scaling: serial {scaling['serial_seconds']:.2f} s, "
        f"process@{workers} {scaling['parallel_seconds']:.2f} s -> "
        f"{scaling['speedup']:.2f}x ({scaling['efficiency']:.2f} efficiency)"
    )
    if scaling["efficiency"] < args.min_efficiency:
        print(
            f"FAIL: scaling efficiency {scaling['efficiency']:.2f} below "
            f"required {args.min_efficiency:.2f}",
            file=sys.stderr,
        )
        failed = True
    print(
        f"resume: cold {resume['cold_seconds']:.2f} s, "
        f"warm {resume['warm_seconds'] * 1e3:.1f} ms -> {resume['speedup']:.0f}x "
        f"({resume['warm_hits']} cells from the store)"
    )
    if resume["speedup"] < args.min_resume_speedup:
        print(
            f"FAIL: warm-resume speedup {resume['speedup']:.0f}x below "
            f"required {args.min_resume_speedup:.0f}x",
            file=sys.stderr,
        )
        failed = True
    print(f"artifact written to {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
