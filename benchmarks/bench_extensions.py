"""Benchmarks for the Section 5.1 / 5.2 extensions.

Not paper figures — these quantify the behaviour of the generalisations the
paper leaves as future work, and check that each reduces to the core model when
its new parameter is switched off:

* travel costs: zero costs reproduce the core IFD; pricing the top sites moves
  the equilibrium (and its coverage) down;
* capacity constraints: requirement 1 reproduces the coverage optimum;
* two-group competition: the group whose internal rule is the exclusive policy
  captures the largest share of the environment (the Section 5.2 prediction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import AggressivePolicy, ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues
from repro.extensions import (
    adaptive_sigma_star_schedule,
    cost_adjusted_ifd,
    maximize_capacity_coverage,
    simulate_repeated_dispersal,
    two_group_competition,
)
from repro.extensions.repeated import constant_schedule

VALUES = SiteValues.zipf(20, exponent=0.9)
K = 6


@pytest.mark.benchmark(group="extensions")
def test_travel_cost_equilibrium(benchmark):
    costs = np.linspace(0.2, 0.0, VALUES.m)  # reaching the best sites is costly

    result = benchmark(cost_adjusted_ifd, VALUES, costs, K, ExclusivePolicy())
    free = ideal_free_distribution(VALUES, K, ExclusivePolicy())
    # Costs on the top sites push the equilibrium away from them and lose coverage.
    assert result.strategy.as_array()[0] < free.strategy.as_array()[0]
    assert coverage(VALUES, result.strategy, K) < coverage(VALUES, free.strategy, K)


@pytest.mark.benchmark(group="extensions")
def test_capacity_constrained_optimum(benchmark):
    requirements = np.ones(VALUES.m, dtype=int)
    requirements[:3] = 2  # the three best patches need two visitors each

    result = benchmark(maximize_capacity_coverage, VALUES, K, requirements)
    # The constrained optimum is below the unconstrained one but above what
    # blindly playing sigma_star achieves on the constrained objective.
    from repro.extensions import capacity_coverage

    star = sigma_star(VALUES, K).strategy
    assert result.coverage <= optimal_coverage(VALUES, K) + 1e-9
    assert result.coverage >= capacity_coverage(VALUES, star, K, requirements) - 1e-8


@pytest.mark.benchmark(group="extensions")
def test_repeated_dispersal_adaptive_vs_constant(benchmark):
    star = sigma_star(VALUES, K).strategy

    def run():
        constant = simulate_repeated_dispersal(
            VALUES, K, constant_schedule(star), rounds=5, n_trials=1_000, rng=0
        )
        adaptive = simulate_repeated_dispersal(
            VALUES, K, adaptive_sigma_star_schedule(K), rounds=5, n_trials=1_000, rng=0
        )
        return constant, adaptive

    constant, adaptive = benchmark(run)
    assert adaptive.cumulative_consumption_mean > constant.cumulative_consumption_mean


@pytest.mark.benchmark(group="extensions")
def test_two_group_competition_exclusive_wins(benchmark):
    def run():
        return {
            "exclusive-first": two_group_competition(
                VALUES, ExclusivePolicy(), SharingPolicy(), k_first=K
            ),
            "sharing-first": two_group_competition(
                VALUES, SharingPolicy(), ExclusivePolicy(), k_first=K
            ),
            "aggressive-first": two_group_competition(
                VALUES, AggressivePolicy(0.5), SharingPolicy(), k_first=K
            ),
        }

    results = benchmark(run)
    # The exclusive-rule group going first captures the most and concedes the least.
    assert (
        results["exclusive-first"].first_consumption
        > results["sharing-first"].first_consumption
    )
    assert (
        results["exclusive-first"].first_consumption
        > results["aggressive-first"].first_consumption
    )
    assert results["exclusive-first"].first_share > results["sharing-first"].first_share
