"""Smoke benchmark: batched scenario kernels vs scalar loops, as a JSON artifact.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --output BENCH_scenarios.json

Four comparisons are timed, one per batched scenario family of
:mod:`repro.batch.scenarios`:

* ``cost_adjusted_ifd_batch`` vs a loop of scalar ``cost_adjusted_ifd`` calls
  (ragged instances, mixed per-row ``k``, per-row cost vectors);
* ``two_group_competition_batch`` vs a loop of scalar
  ``two_group_competition`` calls over a mixed policy-pair roster;
* ``repeated_dispersal_batch`` (adaptive ``sigma_star`` schedule) vs a loop
  of scalar ``expected_repeated_dispersal`` calls;
* ``best_two_level_batch`` vs a loop of scalar ``best_two_level_policy``
  calls over the same ``C_c`` grid.

Each comparison includes a correctness spot check (the artifact can never
report a fast wrong answer).  The script exits non-zero when any family's
speedup falls below ``--min-speedup`` (default 5x) — the acceptance bar the
batched scenario layer was built against, enforced as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.utils.envinfo import environment_metadata

from repro.batch import (
    PaddedValues,
    best_two_level_batch,
    cost_adjusted_ifd_batch,
    repeated_dispersal_batch,
    two_group_competition_batch,
)
from repro.core.policies import AggressivePolicy, ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues
from repro.extensions import (
    cost_adjusted_ifd,
    expected_repeated_dispersal,
    two_group_competition,
)
from repro.extensions.repeated import adaptive_sigma_star_schedule
from repro.mechanism import best_two_level_policy

SEED = 20180503

#: Travel-cost grid: ragged instances with mixed per-row player counts.
TC_N_INSTANCES = 96
TC_M_RANGE = (6, 24)
TC_K_CHOICES = (2, 3, 4, 6, 8)

#: Two-group grid: every ordered pair of the roster, repeated over instances.
GC_N_MATCHUPS = 60
GC_M_RANGE = (6, 20)
GC_K = 6

#: Repeated-dispersal grid.
RD_N_HORIZONS = 256
RD_M_RANGE = (6, 24)
RD_K_CHOICES = (2, 3, 5, 8)
RD_ROUNDS = 6

#: Mechanism sweep: instances x k grid x C_c grid.
BT_N_INSTANCES = 16
BT_M_RANGE = (4, 10)
BT_K_GRID = (2, 3)
BT_C_POINTS = 9


def best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def ragged_instances(rng, count, m_range) -> list[SiteValues]:
    return [
        SiteValues.random(int(m), rng, low=0.1, high=3.0)
        for m in rng.integers(m_range[0], m_range[1], size=count)
    ]


def bench_travel_costs(rng, repeats: int) -> dict:
    instances = ragged_instances(rng, TC_N_INSTANCES, TC_M_RANGE)
    padded = PaddedValues.from_instances(instances)
    ks = rng.choice(TC_K_CHOICES, size=len(instances)).astype(np.int64)
    costs = np.where(padded.mask, rng.uniform(0.0, 0.4, padded.values.shape), 0.0)
    policy = SharingPolicy()

    cost_adjusted_ifd_batch(padded, costs, ks, policy)  # warm-up
    batched = best_of(lambda: cost_adjusted_ifd_batch(padded, costs, ks, policy), repeats)
    looped = best_of(
        lambda: [
            cost_adjusted_ifd(values, costs[i, : values.m], int(ks[i]), policy)
            for i, values in enumerate(instances)
        ],
        max(1, repeats // 2),
    )

    batch = cost_adjusted_ifd_batch(padded, costs, ks, policy)
    for index in (0, len(instances) // 2, len(instances) - 1):
        scalar = cost_adjusted_ifd(
            instances[index], costs[index, : instances[index].m], int(ks[index]), policy
        )
        np.testing.assert_allclose(
            batch.probabilities[index, : instances[index].m],
            scalar.strategy.as_array(),
            atol=1e-5,
        )

    return {
        "grid": {"instances": len(instances), "m_range": list(TC_M_RANGE), "k_choices": list(TC_K_CHOICES)},
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def bench_group_competition(rng, repeats: int) -> dict:
    roster = [ExclusivePolicy(), SharingPolicy(), AggressivePolicy(0.5)]
    pairs = [(a, b) for a in roster for b in roster if a is not b]
    matchups = [pairs[i % len(pairs)] for i in range(GC_N_MATCHUPS)]
    instances = ragged_instances(rng, GC_N_MATCHUPS, GC_M_RANGE)
    padded = PaddedValues.from_instances(instances)
    firsts = [pair[0] for pair in matchups]
    seconds = [pair[1] for pair in matchups]

    two_group_competition_batch(padded, firsts, seconds, GC_K)  # warm-up
    batched = best_of(
        lambda: two_group_competition_batch(padded, firsts, seconds, GC_K), repeats
    )
    looped = best_of(
        lambda: [
            two_group_competition(values, first, second, GC_K)
            for values, (first, second) in zip(instances, matchups)
        ],
        max(1, repeats // 2),
    )

    batch = two_group_competition_batch(padded, firsts, seconds, GC_K)
    for index in (0, GC_N_MATCHUPS // 2, GC_N_MATCHUPS - 1):
        scalar = two_group_competition(
            instances[index], firsts[index], seconds[index], GC_K
        )
        np.testing.assert_allclose(
            batch.first_consumption[index], scalar.first_consumption, atol=1e-5
        )
        np.testing.assert_allclose(
            batch.second_consumption[index], scalar.second_consumption, atol=1e-5
        )

    return {
        "grid": {"matchups": GC_N_MATCHUPS, "m_range": list(GC_M_RANGE), "k": GC_K},
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def bench_repeated(rng, repeats: int) -> dict:
    instances = ragged_instances(rng, RD_N_HORIZONS, RD_M_RANGE)
    padded = PaddedValues.from_instances(instances)
    ks = rng.choice(RD_K_CHOICES, size=len(instances)).astype(np.int64)
    depletions = rng.uniform(0.0, 0.6, len(instances))

    options = dict(rounds=RD_ROUNDS, schedule="adaptive")
    repeated_dispersal_batch(padded, ks, depletion=depletions, **options)  # warm-up
    batched = best_of(
        lambda: repeated_dispersal_batch(padded, ks, depletion=depletions, **options),
        repeats,
    )
    looped = best_of(
        lambda: [
            expected_repeated_dispersal(
                values,
                int(ks[i]),
                adaptive_sigma_star_schedule(int(ks[i])),
                rounds=RD_ROUNDS,
                depletion=float(depletions[i]),
            )
            for i, values in enumerate(instances)
        ],
        max(1, repeats // 2),
    )

    batch = repeated_dispersal_batch(padded, ks, depletion=depletions, **options)
    for index in (0, RD_N_HORIZONS // 2, RD_N_HORIZONS - 1):
        scalar = expected_repeated_dispersal(
            instances[index],
            int(ks[index]),
            adaptive_sigma_star_schedule(int(ks[index])),
            rounds=RD_ROUNDS,
            depletion=float(depletions[index]),
        )
        np.testing.assert_allclose(
            batch.per_round_consumption[index], scalar.per_round_consumption, atol=1e-9
        )

    return {
        "grid": {
            "horizons": RD_N_HORIZONS,
            "m_range": list(RD_M_RANGE),
            "k_choices": list(RD_K_CHOICES),
            "rounds": RD_ROUNDS,
        },
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def bench_best_two_level(rng, repeats: int) -> dict:
    instances = ragged_instances(rng, BT_N_INSTANCES, BT_M_RANGE)
    padded = PaddedValues.from_instances(instances)
    ks = np.asarray(BT_K_GRID, dtype=np.int64)
    c_grid = np.linspace(-0.5, 0.5, BT_C_POINTS)

    best_two_level_batch(padded, ks, c_grid=c_grid)  # warm-up
    batched = best_of(lambda: best_two_level_batch(padded, ks, c_grid=c_grid), repeats)
    looped = best_of(
        lambda: [
            best_two_level_policy(values, int(k), c_grid=c_grid)
            for values in instances
            for k in ks
        ],
        max(1, repeats // 2),
    )

    batch = best_two_level_batch(padded, ks, c_grid=c_grid)
    for index in (0, BT_N_INSTANCES - 1):
        for k_index, k in enumerate(ks):
            _, rows = best_two_level_policy(instances[index], int(k), c_grid=c_grid)
            # Compare achieved coverages, not argmax cells: coverage plateaus
            # can tie adjacent c cells to within solver tolerance.
            np.testing.assert_allclose(
                batch.best_coverages[index, k_index],
                max(row.equilibrium_coverage for row in rows),
                atol=1e-5,
            )

    return {
        "grid": {
            "instances": BT_N_INSTANCES,
            "m_range": list(BT_M_RANGE),
            "k_grid": list(BT_K_GRID),
            "c_points": BT_C_POINTS,
        },
        "batched_seconds": batched,
        "looped_seconds": looped,
        "speedup": looped / batched,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_scenarios.json"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="Fail when any family's batched-vs-looped speedup drops below this.",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(SEED)
    families = {
        "cost_adjusted_ifd": bench_travel_costs(rng, args.repeats),
        "two_group_competition": bench_group_competition(rng, args.repeats),
        "repeated_dispersal": bench_repeated(rng, args.repeats),
        "best_two_level": bench_best_two_level(rng, args.repeats),
    }

    report = {
        "benchmark": "batched scenario kernels vs scalar loops",
        "environment": environment_metadata(),
        "min_speedup_required": args.min_speedup,
        "families": families,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    failed = False
    for name, entry in families.items():
        speedup = entry["speedup"]
        print(
            f"{name}: batched {entry['batched_seconds'] * 1e3:.1f} ms, "
            f"looped {entry['looped_seconds'] * 1e3:.1f} ms -> {speedup:.1f}x"
        )
        if speedup < args.min_speedup:
            print(
                f"FAIL: {name} speedup {speedup:.1f}x below required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            failed = True
    print(f"artifact written to {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
