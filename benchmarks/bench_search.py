"""Bayesian parallel-search benchmarks (the Korman-Rodeh connection).

Shape checks: the ``sigma_star``-derived round strategy maximises the
single-round success probability (Theorem 4 with the prior as value function)
and consequently beats the uniform / proportional / greedy baselines; the
Monte-Carlo search simulator reproduces the closed-form expected discovery
time for memoryless strategies.
"""

from __future__ import annotations

import pytest

from repro.search import (
    BayesianSearchProblem,
    compare_search_strategies,
    expected_discovery_time,
    simulate_search,
    uniform_strategy,
)

PROBLEM = BayesianSearchProblem.zipf(200, exponent=1.0)
K = 8


@pytest.mark.benchmark(group="search")
def test_sigma_star_round_strategy_wins(benchmark):
    report = benchmark(compare_search_strategies, PROBLEM, K)
    best = max(report.values(), key=lambda entry: entry["success_probability"])
    assert report["sigma_star"]["success_probability"] == best["success_probability"]
    assert (
        report["sigma_star"]["success_probability"]
        > report["uniform"]["success_probability"]
    )
    assert (
        report["sigma_star"]["success_probability"]
        > report["proportional"]["success_probability"]
    )


@pytest.mark.benchmark(group="search")
def test_simulated_search_matches_closed_form(benchmark):
    strategy = uniform_strategy(PROBLEM)

    result = benchmark(simulate_search, PROBLEM, strategy, K, 50_000, max_rounds=2_000, rng=0)
    expected = expected_discovery_time(PROBLEM, strategy, K)
    assert result.success_rate > 0.999
    assert result.mean_rounds_when_found == pytest.approx(expected, rel=0.05)
