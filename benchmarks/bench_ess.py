"""Benchmark / reproduction of Theorem 3: ``sigma_star`` is an ESS under ``C_exc``.

Shape checks: every instance in the sweep passes the ESS characterisation
against every mutant in the audit battery; the worst strict-advantage margin is
positive; and the invasion-dynamics sample run never lets the mutant share grow.
"""

from __future__ import annotations

import pytest

from repro.analysis.ess_experiments import ess_experiment
from repro.core.ess import ess_report
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues


@pytest.mark.benchmark(group="ess")
def test_theorem3_ess_audit_sweep(benchmark):
    """Full ESS audit over the standard instance grid."""
    rows = benchmark(
        ess_experiment, m_values=(3, 6), k_values=(2, 3, 5), n_random_mutants=10, rng=0
    )
    assert rows
    assert all(row.is_ess for row in rows)
    assert all(row.worst_margin > 0 for row in rows)
    assert all(row.mutant_suppressed for row in rows)


@pytest.mark.benchmark(group="ess")
def test_theorem3_single_instance_audit_cost(benchmark):
    """Cost of one full mutant audit on a mid-sized instance."""
    values = SiteValues.zipf(20, exponent=0.9)
    star = sigma_star(values, 6).strategy

    report = benchmark(
        ess_report, values, star, 6, ExclusivePolicy(), n_random_mutants=40, rng=1
    )
    assert report.is_ess
    assert report.worst_margin > 0


@pytest.mark.benchmark(group="ess")
def test_sharing_ifd_is_not_coverage_optimal_contrast(benchmark):
    """Contrast case: the sharing IFD is a Nash equilibrium but not coverage optimal.

    This is the comparison the paper draws: stability alone (sharing) does not
    buy optimal coverage; the exclusive policy does.
    """
    from repro.core.coverage import coverage
    from repro.core.ifd import ideal_free_distribution
    from repro.core.optimal_coverage import optimal_coverage

    values = SiteValues.zipf(20, exponent=0.9)

    def run():
        eq = ideal_free_distribution(values, 6, SharingPolicy())
        return coverage(values, eq.strategy, 6), optimal_coverage(values, 6)

    eq_cover, best = benchmark(run)
    assert eq_cover < best
