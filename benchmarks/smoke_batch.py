"""Smoke benchmark: batched vs looped throughput, as JSON artifacts.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/smoke_batch.py --output BENCH_batch.json \
        --dynamics-output BENCH_dynamics.json

Three comparisons are timed on scaling grids (many ragged instances times a
player-count grid — the regime the experiment harness actually runs):

* ``sigma_star_batch``  vs a loop of scalar ``sigma_star`` calls;
* ``optimal_coverage_batch`` vs a loop of scalar ``optimal_coverage`` calls;
* a 256-row replicator sweep through the batched ``DynamicsEngine`` vs a
  loop of scalar ``replicator_dynamics`` calls (written to a separate
  ``BENCH_dynamics.json`` artifact).

The script exits non-zero when the closed-form batch speedup falls below
``--min-speedup`` (default 10x) or the dynamics speedup falls below
``--min-dynamics-speedup`` (default 5x) — the acceptance bars the batch
layer and the dynamics engine were built against.

After the two main gates it hands the freshly written artifacts to
``bench_backend.py`` (``--backend-output``, default ``BENCH_backend.json``),
which times the same grids under every available array backend and asserts
the NumPy backend stays within 10% of the just-measured baselines — the
regression guard of the pluggable backend layer.  Finally it runs
``bench_mc.py`` (``--mc-output``, default ``BENCH_mc.json``), which times
the batched stochastic layer (Monte-Carlo simulation, Bayesian search,
mechanism design) against scalar loops with a >=5x-per-family gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.utils.envinfo import environment_metadata

from repro.batch import (
    PaddedValues,
    optimal_coverage_batch,
    replicator_batch,
    sigma_star_batch,
)
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues
from repro.dynamics import replicator_dynamics

#: The scaling grid: ragged random instances plus the structured families,
#: crossed with the player counts used by the analysis sweeps.
N_RANDOM_INSTANCES = 240
M_RANGE = (20, 200)
K_GRID = (2, 3, 5, 8, 16, 32)
SEED = 20180503

#: The dynamics grid: 64 ragged instances x 4 player counts = 256 replicator
#: trajectories, stepped together by one DynamicsEngine run.
DYN_N_INSTANCES = 64
DYN_M_RANGE = (8, 40)
DYN_K_GRID = (2, 3, 5, 8)
DYN_MAX_ITER = 1_500
DYN_TOL = 1e-9


def build_instances(rng: np.random.Generator) -> list[SiteValues]:
    instances = [
        SiteValues.random(int(m), rng)
        for m in rng.integers(M_RANGE[0], M_RANGE[1], size=N_RANDOM_INSTANCES)
    ]
    for m in (25, 50, 100, 200):
        instances += [
            SiteValues.uniform(m),
            SiteValues.zipf(m, exponent=1.0),
            SiteValues.geometric(m, ratio=0.95),
            SiteValues.slowly_decreasing(m, 8),
        ]
    return instances


def best_of(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_dynamics(output: Path, repeats: int, min_speedup: float) -> tuple[bool, str]:
    """Time the 256-row batched replicator sweep against the scalar loop."""
    rng = np.random.default_rng(SEED + 1)
    instances = [
        SiteValues.random(int(m), rng)
        for m in rng.integers(DYN_M_RANGE[0], DYN_M_RANGE[1], size=DYN_N_INSTANCES)
    ]
    # One row per (instance, k) cell: a ragged, mixed-k 256-row batch.
    rows = [(values, k) for values in instances for k in DYN_K_GRID]
    padded = PaddedValues.from_instances([values for values, _ in rows])
    ks = np.asarray([k for _, k in rows], dtype=np.int64)
    policy = SharingPolicy()
    options = dict(max_iter=DYN_MAX_ITER, tol=DYN_TOL, record_every=500)

    replicator_batch(padded, ks, policy, **options)  # warm-up

    batched_seconds = best_of(
        lambda: replicator_batch(padded, ks, policy, **options), repeats
    )
    looped_seconds = best_of(
        lambda: [
            replicator_dynamics(values, int(k), policy, **options)
            for values, k in rows
        ],
        max(1, repeats // 2),
    )

    # Correctness spot check so the artifact can't report a fast wrong answer.
    batch = replicator_batch(padded, ks, policy, **options)
    for index in (0, len(rows) // 2, len(rows) - 1):
        values, k = rows[index]
        scalar = replicator_dynamics(values, int(k), policy, **options)
        assert scalar.iterations == int(batch.iterations[index])
        np.testing.assert_allclose(
            batch.strategy(index).as_array(), scalar.strategy.as_array(), atol=1e-9
        )

    speedup = looped_seconds / batched_seconds
    report = {
        "benchmark": "batched vs looped replicator dynamics",
        "environment": environment_metadata(),
        "grid": {
            "rows": len(rows),
            "instances": len(instances),
            "m_range": list(DYN_M_RANGE),
            "k_grid": list(DYN_K_GRID),
            "max_iter": DYN_MAX_ITER,
            "tol": DYN_TOL,
        },
        "replicator": {
            "batched_seconds": batched_seconds,
            "looped_seconds": looped_seconds,
            "speedup": speedup,
            "batched_rows_per_second": len(rows) / batched_seconds,
            "looped_rows_per_second": len(rows) / looped_seconds,
        },
        "min_speedup_required": min_speedup,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    line = (
        f"replicator DynamicsEngine: {len(rows)} rows in {batched_seconds * 1e3:.1f} ms "
        f"(loop: {looped_seconds * 1e3:.1f} ms) -> {speedup:.1f}x"
    )
    return speedup >= min_speedup, line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_batch.json"))
    parser.add_argument(
        "--dynamics-output", type=Path, default=Path("BENCH_dynamics.json")
    )
    parser.add_argument(
        "--backend-output",
        type=str,
        default="BENCH_backend.json",
        help="Per-backend timing artifact (empty string disables the backend pass).",
    )
    parser.add_argument(
        "--mc-output",
        type=str,
        default="BENCH_mc.json",
        help="Stochastic-layer timing artifact (empty string disables the pass).",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--min-dynamics-speedup", type=float, default=5.0)
    parser.add_argument(
        "--min-mc-speedup",
        type=float,
        default=5.0,
        help="Required batched-vs-looped speedup for each stochastic family.",
    )
    parser.add_argument(
        "--max-backend-slowdown",
        type=float,
        default=1.10,
        help="Allowed numpy-backend slowdown vs the artifacts written above.",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(SEED)
    instances = build_instances(rng)
    padded = PaddedValues.from_instances(instances)
    cells = len(instances) * len(K_GRID)

    # Warm-up (first-call numpy/dispatch overhead should not be timed).
    sigma_star_batch(padded, K_GRID)

    batched_sigma = best_of(lambda: sigma_star_batch(padded, K_GRID), args.repeats)
    looped_sigma = best_of(
        lambda: [sigma_star(v, k) for v in instances for k in K_GRID],
        max(1, args.repeats // 2),
    )

    batched_cover = best_of(lambda: optimal_coverage_batch(padded, K_GRID), args.repeats)
    looped_cover = best_of(
        lambda: [optimal_coverage(v, k) for v in instances for k in K_GRID],
        max(1, args.repeats // 2),
    )

    # Correctness spot check so the artifact can't report a fast wrong answer.
    batch = sigma_star_batch(padded, K_GRID)
    for index in (0, len(instances) // 2, len(instances) - 1):
        for k_index, k in enumerate(K_GRID):
            scalar = sigma_star(instances[index], k)
            assert scalar.support_size == int(batch.support_sizes[index, k_index])
            np.testing.assert_allclose(
                batch.result(index, k_index).probabilities,
                scalar.probabilities,
                atol=1e-9,
            )

    report = {
        "benchmark": "batched vs looped solver throughput",
        "environment": environment_metadata(),
        "grid": {
            "instances": len(instances),
            "m_range": list(M_RANGE),
            "k_grid": list(K_GRID),
            "cells": cells,
        },
        "sigma_star": {
            "batched_seconds": batched_sigma,
            "looped_seconds": looped_sigma,
            "speedup": looped_sigma / batched_sigma,
            "batched_cells_per_second": cells / batched_sigma,
            "looped_cells_per_second": cells / looped_sigma,
        },
        "optimal_coverage": {
            "batched_seconds": batched_cover,
            "looped_seconds": looped_cover,
            "speedup": looped_cover / batched_cover,
        },
        "min_speedup_required": args.min_speedup,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    speedup = report["sigma_star"]["speedup"]
    print(
        f"sigma_star_batch: {cells} cells in {batched_sigma * 1e3:.1f} ms "
        f"(loop: {looped_sigma * 1e3:.1f} ms) -> {speedup:.1f}x"
    )
    print(
        f"optimal_coverage_batch: {report['optimal_coverage']['speedup']:.1f}x; "
        f"artifact written to {args.output}"
    )
    dynamics_ok, dynamics_line = bench_dynamics(
        args.dynamics_output, args.repeats, args.min_dynamics_speedup
    )
    print(f"{dynamics_line}; artifact written to {args.dynamics_output}")

    failed = False
    if speedup < args.min_speedup:
        print(
            f"FAIL: solver speedup {speedup:.1f}x below required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        failed = True
    if not dynamics_ok:
        print(
            f"FAIL: dynamics speedup below required {args.min_dynamics_speedup:.1f}x",
            file=sys.stderr,
        )
        failed = True

    if args.backend_output:
        # Deferred import: bench_backend imports this module for the shared
        # grid constants.
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_backend

        backend_ok, backend_lines = bench_backend.run_backend_bench(
            Path(args.backend_output),
            baseline=args.output,
            dynamics_baseline=args.dynamics_output,
            repeats=args.repeats,
            max_slowdown=args.max_backend_slowdown,
            min_speedup=args.min_speedup,
            min_dynamics_speedup=args.min_dynamics_speedup,
        )
        for line in backend_lines:
            print(line)
        if not backend_ok:
            print(
                "FAIL: numpy backend regressed a backend-layer throughput gate",
                file=sys.stderr,
            )
            failed = True

    if args.mc_output:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_mc

        mc_ok, mc_lines = bench_mc.run_mc_bench(
            Path(args.mc_output),
            repeats=max(1, args.repeats // 2),
            min_speedup=args.min_mc_speedup,
        )
        for line in mc_lines:
            print(line)
        if not mc_ok:
            print(
                f"FAIL: a stochastic-family speedup fell below "
                f"{args.min_mc_speedup:.1f}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
