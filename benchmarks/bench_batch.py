"""Benchmarks of the batched solver layer against scalar loops.

These quantify the tentpole claim of the batch refactor: solving a whole
``(instances x k-grid)`` in tensor passes beats looping the scalar solvers by
an order of magnitude on experiment-harness-sized grids, and the advantage
grows with the number of instances (per-call Python overhead amortises away).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import PaddedValues, ifd_batch, sigma_star_batch, spoa_batch
from repro.core.ifd import ideal_free_distribution
from repro.core.policies import SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues

K_GRID = (2, 3, 5, 8, 16, 32)


@pytest.fixture(scope="module", params=[64, 256], ids=["B=64", "B=256"])
def instance_batch(request) -> PaddedValues:
    rng = np.random.default_rng(7)
    instances = [
        SiteValues.random(int(m), rng) for m in rng.integers(20, 200, size=request.param)
    ]
    return PaddedValues.from_instances(instances)


@pytest.mark.benchmark(group="batch-sigma-star")
def test_sigma_star_batched(benchmark, instance_batch):
    result = benchmark(sigma_star_batch, instance_batch, K_GRID)
    np.testing.assert_allclose(result.probabilities.sum(axis=2), 1.0, atol=1e-9)


@pytest.mark.benchmark(group="batch-sigma-star")
def test_sigma_star_looped(benchmark, instance_batch):
    instances = [instance_batch.row(b) for b in range(instance_batch.batch_size)]

    def run():
        return [sigma_star(v, k) for v in instances for k in K_GRID]

    results = benchmark(run)
    assert len(results) == instance_batch.batch_size * len(K_GRID)


@pytest.mark.benchmark(group="batch-ifd")
def test_ifd_batched_sharing(benchmark):
    rng = np.random.default_rng(11)
    instances = [SiteValues.random(int(m), rng) for m in rng.integers(5, 40, size=48)]
    result = benchmark(ifd_batch, instances, (2, 5), SharingPolicy())
    assert bool(result.converged.all())


@pytest.mark.benchmark(group="batch-ifd")
def test_ifd_looped_sharing(benchmark):
    rng = np.random.default_rng(11)
    instances = [SiteValues.random(int(m), rng) for m in rng.integers(5, 40, size=48)]

    def run():
        return [
            ideal_free_distribution(v, k, SharingPolicy()) for v in instances for k in (2, 5)
        ]

    results = benchmark(run)
    assert all(r.converged for r in results)


@pytest.mark.benchmark(group="batch-spoa")
def test_spoa_batched_sharing(benchmark):
    rng = np.random.default_rng(13)
    instances = [SiteValues.random(int(m), rng) for m in rng.integers(5, 30, size=32)]
    result = benchmark(spoa_batch, instances, (2, 3, 5), SharingPolicy())
    assert np.all(result.ratios >= 1.0 - 1e-9)


def test_batched_sigma_star_is_10x_faster(instance_batch):
    """The acceptance bar of the batch refactor, asserted without pytest-benchmark."""
    import time

    instances = [instance_batch.row(b) for b in range(instance_batch.batch_size)]
    sigma_star_batch(instance_batch, K_GRID)  # warm-up

    batched = np.inf
    for _ in range(5):
        start = time.perf_counter()
        sigma_star_batch(instance_batch, K_GRID)
        batched = min(batched, time.perf_counter() - start)
    start = time.perf_counter()
    for v in instances:
        for k in K_GRID:
            sigma_star(v, k)
    looped = time.perf_counter() - start
    assert looped / batched >= 10.0, f"speedup only {looped / batched:.1f}x"
