"""Dynamics benchmarks: convergence of decentralised adaptation to the IFD.

Not a paper figure — these back the paper's framing that the ESS/IFD is what a
large population of adapting individuals actually reaches.  Each benchmark
times a dynamics run and asserts it lands on the IFD computed independently by
the equilibrium solver.
"""

from __future__ import annotations

import pytest

from repro.core.ifd import ideal_free_distribution
from repro.core.policies import ExclusivePolicy, SharingPolicy, TwoLevelPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.dynamics import (
    best_response_dynamics,
    invasion_dynamics,
    logit_dynamics,
    replicator_dynamics,
)

VALUES = SiteValues.zipf(10, exponent=0.8)
K = 4


@pytest.mark.benchmark(group="dynamics")
@pytest.mark.parametrize(
    "policy", [ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.25)], ids=["exclusive", "sharing", "aggressive-ish"]
)
def test_replicator_reaches_ifd(benchmark, policy):
    target = ideal_free_distribution(VALUES, K, policy).strategy

    result = benchmark(replicator_dynamics, VALUES, K, policy, max_iter=40_000)
    assert result.strategy.total_variation(target) < 1e-4


@pytest.mark.benchmark(group="dynamics")
def test_logit_reaches_ifd(benchmark):
    target = ideal_free_distribution(VALUES, K, SharingPolicy()).strategy

    def run():
        return logit_dynamics(VALUES, K, SharingPolicy(), rationality=600.0, max_iter=20_000)

    result = benchmark(run)
    assert result.strategy.total_variation(target) < 0.02


@pytest.mark.benchmark(group="dynamics")
def test_best_response_reaches_low_exploitability(benchmark):
    result = benchmark(best_response_dynamics, VALUES, K, ExclusivePolicy(), max_iter=10_000)
    assert result.exploitability < 0.01


@pytest.mark.benchmark(group="dynamics")
def test_invasion_of_sigma_star_fails(benchmark):
    resident = sigma_star(VALUES, K).strategy
    mutant = Strategy.uniform(VALUES.m)

    result = benchmark(
        invasion_dynamics, VALUES, resident, mutant, K, ExclusivePolicy(), initial_share=0.05
    )
    assert result.final_share < 0.05
    assert not result.mutant_fixated
