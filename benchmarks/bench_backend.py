"""Backend benchmark: batched kernel throughput per available array backend.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/bench_backend.py --output BENCH_backend.json \
        --baseline BENCH_batch.json --dynamics-baseline BENCH_dynamics.json

For every backend the registry detects (``numpy`` always;
``array_api_strict`` / ``torch`` / ``cupy`` when installed) the script times
the same grids the smoke benchmark uses — the closed-form ``sigma_star`` /
coverage solvers and a 256-row batched replicator sweep — under
``use_backend(name)``, checks the alternate backends agree elementwise with
NumPy, and records everything into one JSON artifact.

Two gates guard the NumPy backend (the production default):

* **no-overhead gate** — the backend-dispatched NumPy timings must stay
  within ``--max-slowdown`` (default 10%) of the baseline artifacts written
  by ``smoke_batch.py`` in the same run, so the ``xp`` indirection can never
  silently tax the hot paths;
* **speedup gate** — the batched-vs-looped speedups re-derived against the
  baseline's looped timings must still clear the historical ``>= 10x``
  solver and ``>= 5x`` dynamics bars.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.utils.envinfo import environment_metadata

sys.path.insert(0, str(Path(__file__).resolve().parent))
import smoke_batch  # noqa: E402  (shared grid constants and timing helper)

from repro.backend import available_backends, backend_failures, use_backend  # noqa: E402
from repro.batch import (  # noqa: E402
    PaddedValues,
    optimal_coverage_batch,
    replicator_batch,
    sigma_star_batch,
)
from repro.core.policies import SharingPolicy  # noqa: E402
from repro.core.values import SiteValues  # noqa: E402


def _build_grids():
    """The exact grids ``smoke_batch.py`` times, rebuilt from the same seeds."""
    rng = np.random.default_rng(smoke_batch.SEED)
    solver_padded = PaddedValues.from_instances(smoke_batch.build_instances(rng))
    dyn_rng = np.random.default_rng(smoke_batch.SEED + 1)
    dyn_instances = [
        SiteValues.random(int(m), dyn_rng)
        for m in dyn_rng.integers(
            smoke_batch.DYN_M_RANGE[0],
            smoke_batch.DYN_M_RANGE[1],
            size=smoke_batch.DYN_N_INSTANCES,
        )
    ]
    rows = [(values, k) for values in dyn_instances for k in smoke_batch.DYN_K_GRID]
    dyn_padded = PaddedValues.from_instances([values for values, _ in rows])
    dyn_ks = np.asarray([k for _, k in rows], dtype=np.int64)
    return solver_padded, dyn_padded, dyn_ks


#: Scaled-down dynamics profile for the alternate backends: the conformance
#: and device namespaces exist for correctness/portability, not CPU speed, so
#: they get one repeat over a short sweep instead of the full 1500-iteration
#: grid (which would take minutes under a pure-Python strict wrapper).
_LIGHT_DYN_ROWS = 32
_LIGHT_DYN_MAX_ITER = 200


def _time_backend(name, solver_padded, dyn_padded, dyn_ks, repeats, references):
    """Time the solver and dynamics grids under one backend.

    The numpy backend runs the full smoke grids; alternate backends run the
    full solver grid once plus the light dynamics profile, and every result
    is checked elementwise against the numpy reference of the same profile.
    """
    policy = SharingPolicy()
    full = name == "numpy"
    repeats = repeats if full else 1
    if full:
        dyn_values, dyn_k, dyn_options = dyn_padded, dyn_ks, dict(
            max_iter=smoke_batch.DYN_MAX_ITER, tol=smoke_batch.DYN_TOL, record_every=500
        )
    else:
        dyn_values = PaddedValues(
            dyn_padded.values[:_LIGHT_DYN_ROWS], dyn_padded.sizes[:_LIGHT_DYN_ROWS]
        )
        dyn_k = dyn_ks[:_LIGHT_DYN_ROWS]
        dyn_options = dict(
            max_iter=_LIGHT_DYN_MAX_ITER, tol=smoke_batch.DYN_TOL, record_every=100
        )
    k_grid = smoke_batch.K_GRID
    with use_backend(name):
        star = sigma_star_batch(solver_padded, k_grid)  # warm-up + correctness probe
        solver_seconds = smoke_batch.best_of(
            lambda: sigma_star_batch(solver_padded, k_grid), repeats
        )
        coverage_seconds = smoke_batch.best_of(
            lambda: optimal_coverage_batch(solver_padded, k_grid), repeats
        )
        dyn = replicator_batch(dyn_values, dyn_k, policy, **dyn_options)
        dynamics_seconds = smoke_batch.best_of(
            lambda: replicator_batch(dyn_values, dyn_k, policy, **dyn_options),
            repeats,
        )
    if full:
        references["star"] = star
        with use_backend("numpy"):
            references["light_dyn"] = replicator_batch(
                PaddedValues(
                    dyn_padded.values[:_LIGHT_DYN_ROWS], dyn_padded.sizes[:_LIGHT_DYN_ROWS]
                ),
                dyn_ks[:_LIGHT_DYN_ROWS],
                policy,
                max_iter=_LIGHT_DYN_MAX_ITER,
                tol=smoke_batch.DYN_TOL,
                record_every=100,
            )
    else:
        # Alternate backends must reproduce the NumPy results elementwise.
        # The contraction adapter (einsum vs multiply-reduce) may differ in
        # float association, so the trajectory comparison allows round-off.
        ref_star, ref_dyn = references["star"], references["light_dyn"]
        np.testing.assert_allclose(star.probabilities, ref_star.probabilities, atol=1e-9)
        np.testing.assert_array_equal(star.support_sizes, ref_star.support_sizes)
        assert int(np.max(np.abs(dyn.iterations - ref_dyn.iterations))) <= 1
        np.testing.assert_allclose(dyn.states, ref_dyn.states, atol=1e-6)
    cells = solver_padded.batch_size * len(k_grid)
    return {
        "profile": "full" if full else "light",
        "sigma_star_seconds": solver_seconds,
        "optimal_coverage_seconds": coverage_seconds,
        "dynamics_seconds": dynamics_seconds,
        "dynamics_rows": int(dyn_values.batch_size),
        "dynamics_max_iter": int(dyn_options["max_iter"]),
        "sigma_star_cells_per_second": cells / solver_seconds,
        "dynamics_rows_per_second": dyn_values.batch_size / dynamics_seconds,
    }


def _load_baseline(path: Path) -> dict | None:
    if path is None or not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def run_backend_bench(
    output: Path,
    *,
    baseline: Path | None = None,
    dynamics_baseline: Path | None = None,
    repeats: int = 5,
    max_slowdown: float = 1.10,
    min_speedup: float = 10.0,
    min_dynamics_speedup: float = 5.0,
) -> tuple[bool, list[str]]:
    """Time every available backend, write the artifact, evaluate the gates.

    Returns ``(ok, report_lines)``.
    """
    solver_padded, dyn_padded, dyn_ks = _build_grids()
    backends: dict[str, dict] = {}
    references: dict = {}
    lines: list[str] = []
    for name in available_backends():
        timings = _time_backend(
            name, solver_padded, dyn_padded, dyn_ks, repeats, references
        )
        backends[name] = timings
        lines.append(
            f"backend {name} ({timings['profile']} profile): "
            f"sigma_star {timings['sigma_star_seconds'] * 1e3:.1f} ms, "
            f"dynamics {timings['dynamics_seconds'] * 1e3:.1f} ms "
            f"({timings['dynamics_rows']} rows x {timings['dynamics_max_iter']} iter cap)"
        )

    gates: dict[str, dict] = {}
    ok = True
    numpy_timings = backends["numpy"]
    solver_base = _load_baseline(baseline)
    dynamics_base = _load_baseline(dynamics_baseline)

    #: Tiny absolute slack so microsecond-scale timer noise cannot trip the
    #: ratio gate on very fast grids.
    noise_floor = 5e-3

    if solver_base is not None:
        base_seconds = float(solver_base["sigma_star"]["batched_seconds"])
        seconds = numpy_timings["sigma_star_seconds"]
        ratio = seconds / base_seconds
        passed = ratio <= max_slowdown or seconds - base_seconds <= noise_floor
        gates["solver_overhead"] = {
            "baseline_seconds": base_seconds,
            "backend_seconds": seconds,
            "ratio": ratio,
            "max_slowdown": max_slowdown,
            "passed": passed,
        }
        ok &= passed
        looped = float(solver_base["sigma_star"]["looped_seconds"])
        speedup = looped / seconds
        passed = speedup >= min_speedup
        gates["solver_speedup"] = {
            "speedup": speedup,
            "required": min_speedup,
            "passed": passed,
        }
        ok &= passed
        lines.append(
            f"numpy backend solver gate: {ratio:.3f}x baseline "
            f"(<= {max_slowdown:.2f}), speedup {speedup:.1f}x (>= {min_speedup:.0f}x)"
        )
    if dynamics_base is not None:
        base_seconds = float(dynamics_base["replicator"]["batched_seconds"])
        seconds = numpy_timings["dynamics_seconds"]
        ratio = seconds / base_seconds
        passed = ratio <= max_slowdown or seconds - base_seconds <= noise_floor
        gates["dynamics_overhead"] = {
            "baseline_seconds": base_seconds,
            "backend_seconds": seconds,
            "ratio": ratio,
            "max_slowdown": max_slowdown,
            "passed": passed,
        }
        ok &= passed
        looped = float(dynamics_base["replicator"]["looped_seconds"])
        speedup = looped / seconds
        passed = speedup >= min_dynamics_speedup
        gates["dynamics_speedup"] = {
            "speedup": speedup,
            "required": min_dynamics_speedup,
            "passed": passed,
        }
        ok &= passed
        lines.append(
            f"numpy backend dynamics gate: {ratio:.3f}x baseline "
            f"(<= {max_slowdown:.2f}), speedup {speedup:.1f}x "
            f"(>= {min_dynamics_speedup:.0f}x)"
        )

    report = {
        "benchmark": "batched kernel throughput per array backend",
        "environment": environment_metadata(),
        "grid": {
            "solver_instances": solver_padded.batch_size,
            "solver_k_grid": list(smoke_batch.K_GRID),
            "dynamics_rows": dyn_padded.batch_size,
            "dynamics_max_iter": smoke_batch.DYN_MAX_ITER,
        },
        "backends": backends,
        "unavailable_backends": backend_failures(),
        "gates": gates,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    lines.append(f"artifact written to {output}")
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_backend.json"))
    parser.add_argument("--baseline", type=Path, default=Path("BENCH_batch.json"))
    parser.add_argument(
        "--dynamics-baseline", type=Path, default=Path("BENCH_dynamics.json")
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--max-slowdown", type=float, default=1.10)
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--min-dynamics-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    ok, lines = run_backend_bench(
        args.output,
        baseline=args.baseline,
        dynamics_baseline=args.dynamics_baseline,
        repeats=args.repeats,
        max_slowdown=args.max_slowdown,
        min_speedup=args.min_speedup,
        min_dynamics_speedup=args.min_dynamics_speedup,
    )
    for line in lines:
        print(line)
    if not ok:
        print("FAIL: numpy backend regressed a throughput gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
