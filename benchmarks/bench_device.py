"""Device-residency benchmark: torch-vs-NumPy timings and the zero-transfer gate.

Runs without pytest (plain script, stdlib + NumPy only) so CI can execute it
as a standalone job::

    PYTHONPATH=src python benchmarks/bench_device.py --output BENCH_device.json \
        --require-torch

For each kernel family — dispersal **simulation**, **search** (closed forms
plus the geometric round sampler) and replicator **dynamics** — the script:

* times the family on the NumPy backend and on every non-NumPy backend the
  registry detects (torch-CPU in CI; CUDA/MPS when present), checking the
  device results agree elementwise with NumPy;
* counts host<->device crossings with
  :func:`repro.backend.track_transfers` and records them per family; the
  **zero-transfer gate** requires ``mid_kernel == 0`` on every non-NumPy
  backend — all staging must flow through ``expected_transfer`` seams;
* on torch, additionally runs the dynamics family with ``compile=True`` and
  records the max elementwise deviation from eager stepping (gated at
  ``--compile-atol``).

Two ratio gates bound the cost of portability: torch-CPU may be at most
``--max-overhead`` times slower than NumPy per family (CPU tensor dispatch
is expected to lose on small batches — the bound is generous by design and
merely catches pathological regressions), and NumPy itself must not regress
(its transfer count is structurally zero).

Without torch installed the script writes the artifact with a ``skipped``
marker and exits 0, unless ``--require-torch`` is given (CI passes it).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.backend import (
    available_backends,
    backend_failures,
    resolve_backend,
    track_transfers,
)
from repro.batch import PaddedValues, replicator_batch
from repro.batch.search import (
    expected_discovery_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.batch.simulation import simulate_dispersal_batch
from repro.core.policies import SharingPolicy
from repro.core.values import SiteValues
from repro.utils.envinfo import environment_metadata

SEED = 2026

#: Modest grid sizes: the point is the transfer accounting and the overhead
#: ratio, not peak throughput (bench_scenarios.py covers that).
SIM_ROWS = 64
SIM_TRIALS = 2_000
SEARCH_ROWS = 128
SEARCH_TRIALS = 512
DYN_ROWS = 48
DYN_MAX_ITER = 300


def best_of(fn, repeats: int) -> float:
    """Best wall-clock of ``repeats`` runs (same convention as smoke_batch)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_grids():
    rng = np.random.default_rng(SEED)
    sim_instances = [
        SiteValues.random(int(m), rng) for m in rng.integers(4, 12, size=SIM_ROWS)
    ]
    sim_padded = PaddedValues.from_instances(sim_instances)
    sim_strategies = [
        (lambda w: w / w.sum())(rng.random(int(size))) for size in sim_padded.sizes
    ]
    sim_ks = rng.integers(2, 7, size=SIM_ROWS)

    sizes = rng.integers(4, 12, size=SEARCH_ROWS)
    priors = [(lambda w: w / w.sum())(rng.random(int(s))) for s in sizes]
    strategies = [(lambda w: w / w.sum())(rng.random(int(s))) for s in sizes]
    search_ks = rng.integers(1, 5, size=SEARCH_ROWS)

    dyn_instances = [
        SiteValues.random(int(m), rng) for m in rng.integers(4, 10, size=DYN_ROWS)
    ]
    dyn_padded = PaddedValues.from_instances(dyn_instances)
    dyn_ks = rng.integers(2, 6, size=DYN_ROWS)
    return {
        "simulation": (sim_padded, sim_strategies, sim_ks),
        "search": (priors, strategies, search_ks),
        "dynamics": (dyn_padded, dyn_ks),
    }


def _run_family(family: str, grids, backend, *, compile: bool = False):
    """One full pass of a kernel family under ``backend``; returns the result."""
    policy = SharingPolicy()
    if family == "simulation":
        padded, strategies, ks = grids["simulation"]
        return simulate_dispersal_batch(
            padded, strategies, ks, policy, SIM_TRIALS, SEED + 1, backend=backend
        )
    if family == "search":
        priors, strategies, ks = grids["search"]
        return (
            success_probability_batch(priors, strategies, ks, backend=backend),
            expected_discovery_time_batch(priors, strategies, ks, backend=backend),
            simulate_search_batch(
                priors, strategies, ks, SEARCH_TRIALS, rng=SEED + 2, backend=backend
            ).rounds,
        )
    if family == "dynamics":
        padded, ks = grids["dynamics"]
        return replicator_batch(
            padded,
            ks,
            policy,
            max_iter=DYN_MAX_ITER,
            tol=1e-12,
            record_every=100,
            backend=backend,
            compile=compile,
        )
    raise ValueError(f"unknown family {family!r}")


def _family_arrays(family: str, result):
    """Comparable host arrays of one family result (for cross-backend checks)."""
    if family == "simulation":
        return {
            "coverage_means": result.coverage_means,
            "payoff_means": result.payoff_means,
            "occupancy_histograms": result.occupancy_histograms,
        }
    if family == "search":
        success, expected, rounds = result
        return {"success": success, "expected": expected, "rounds": rounds}
    return {
        "states": result.states,
        "iterations": result.iterations,
        "payoff_records": result.payoff_records,
    }


def _check_agreement(family: str, reference, candidate) -> float:
    """Assert elementwise agreement and return the max absolute deviation."""
    ref = _family_arrays(family, reference)
    cand = _family_arrays(family, candidate)
    worst = 0.0
    for name, expected in ref.items():
        got = np.asarray(cand[name])
        expected = np.asarray(expected)
        if np.issubdtype(expected.dtype, np.integer):
            np.testing.assert_array_equal(got, expected, err_msg=f"{family}.{name}")
        else:
            finite = np.isfinite(expected)
            np.testing.assert_array_equal(
                np.isfinite(got), finite, err_msg=f"{family}.{name} (finiteness)"
            )
            np.testing.assert_allclose(
                got[finite], expected[finite], atol=1e-9, rtol=1e-9,
                err_msg=f"{family}.{name}",
            )
            if finite.any():
                worst = max(worst, float(np.max(np.abs(got[finite] - expected[finite]))))
    return worst


FAMILIES = ("simulation", "search", "dynamics")


def run_device_bench(
    output: Path,
    *,
    repeats: int = 3,
    max_overhead: float = 25.0,
    compile_atol: float = 1e-8,
    require_torch: bool = False,
) -> tuple[bool, list[str]]:
    """Benchmark every family per backend, write the artifact, evaluate gates."""
    grids = _build_grids()
    lines: list[str] = []
    gates: dict[str, dict] = {}
    ok = True

    detected = available_backends()
    device_backends = [name for name in detected if name != "numpy"]
    if require_torch and "torch" not in detected:
        failure = backend_failures().get("torch", "torch backend not detected")
        return False, [f"FAIL: --require-torch given but torch is unavailable: {failure}"]

    backends: dict[str, dict] = {}
    references: dict[str, object] = {}
    for name in ["numpy"] + device_backends:
        backend = resolve_backend(name)
        families: dict[str, dict] = {}
        for family in FAMILIES:
            result = _run_family(family, grids, backend)  # warm-up + probe
            with track_transfers() as stats:
                _run_family(family, grids, backend)
            seconds = best_of(lambda: _run_family(family, grids, backend), repeats)
            entry = {
                "seconds": seconds,
                "transfers": stats.as_dict(),
                "mid_kernel_transfers": stats.mid_kernel,
            }
            if name == "numpy":
                references[family] = result
            else:
                entry["max_abs_deviation_vs_numpy"] = _check_agreement(
                    family, references[family], result
                )
                ratio = seconds / backends["numpy"]["families"][family]["seconds"]
                entry["overhead_vs_numpy"] = ratio
                passed = ratio <= max_overhead
                gates[f"{name}_{family}_overhead"] = {
                    "ratio": ratio,
                    "max_overhead": max_overhead,
                    "passed": passed,
                }
                ok &= passed
                passed = stats.mid_kernel == 0
                gates[f"{name}_{family}_zero_transfer"] = {
                    "mid_kernel_transfers": stats.mid_kernel,
                    "boundary_transfers": stats.boundary_to_host
                    + stats.boundary_to_device,
                    "passed": passed,
                }
                ok &= passed
            families[family] = entry
            lines.append(
                f"{name}/{family}: {seconds * 1e3:.1f} ms, "
                f"{stats.mid_kernel} mid-kernel / "
                f"{stats.boundary_to_host + stats.boundary_to_device} boundary transfers"
            )
        backends[name] = {"families": families}

    compiled: dict[str, object] = {"available": False}
    if "torch" in device_backends:
        torch_backend = resolve_backend("torch")
        eager = _run_family("dynamics", grids, torch_backend)
        piloted = _run_family("dynamics", grids, torch_backend, compile=True)
        deviation = float(np.max(np.abs(piloted.states - eager.states)))
        seconds = best_of(
            lambda: _run_family("dynamics", grids, torch_backend, compile=True), repeats
        )
        passed = deviation <= compile_atol
        compiled = {
            "available": True,
            "seconds": seconds,
            "max_abs_deviation_vs_eager": deviation,
        }
        gates["torch_compile_agreement"] = {
            "max_abs_deviation": deviation,
            "atol": compile_atol,
            "passed": passed,
        }
        ok &= passed
        lines.append(
            f"torch/dynamics compiled: {seconds * 1e3:.1f} ms, "
            f"max |compiled - eager| = {deviation:.2e}"
        )

    report = {
        "benchmark": "device-resident kernels: transfer counts and torch-vs-numpy ratios",
        "environment": environment_metadata(),
        "grid": {
            "simulation_rows": SIM_ROWS,
            "simulation_trials": SIM_TRIALS,
            "search_rows": SEARCH_ROWS,
            "search_trials": SEARCH_TRIALS,
            "dynamics_rows": DYN_ROWS,
            "dynamics_max_iter": DYN_MAX_ITER,
        },
        "backends": backends,
        "compiled_dynamics": compiled,
        "unavailable_backends": backend_failures(),
        "skipped": not device_backends,
        "gates": gates,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    if not device_backends:
        lines.append(
            "no non-NumPy backend available: transfer/overhead gates skipped "
            "(install torch to exercise them)"
        )
    lines.append(f"artifact written to {output}")
    return ok, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_device.json"))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--max-overhead", type=float, default=25.0)
    parser.add_argument("--compile-atol", type=float, default=1e-8)
    parser.add_argument(
        "--require-torch",
        action="store_true",
        help="fail (exit 1) instead of skipping when torch is unavailable",
    )
    args = parser.parse_args(argv)

    ok, lines = run_device_bench(
        args.output,
        repeats=args.repeats,
        max_overhead=args.max_overhead,
        compile_atol=args.compile_atol,
        require_torch=args.require_torch,
    )
    for line in lines:
        print(line)
    if not ok:
        print("FAIL: a device gate did not pass", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
