"""Legacy shim: all packaging metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
