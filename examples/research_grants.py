#!/usr/bin/env python
"""Research-funding scenario: steering researchers over topics.

The introduction of the paper (and the Kleinberg-Oren line of work it builds
on) motivates the dispersal game with research funding: a foundation cares
about a set of topics with social values ``f(x)``; ``k`` researchers each pick
one topic; researchers working on the same topic share the credit.  The
foundation wants the *coverage* — the total value of topics that receive any
attention — to be as large as possible.

This example compares three interventions:

1. do nothing (sharing policy with rewards equal to the social values);
2. reward design (Kleinberg-Oren): keep the sharing rule but re-price topics
   (grant sizes) so the equilibrium matches the coverage-optimal distribution;
3. congestion design (this paper): keep the rewards but make credit exclusive
   (only sole authors on a topic get the credit).

Run with::

    python examples/research_grants.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ExclusivePolicy,
    SharingPolicy,
    SiteValues,
    coverage,
    ideal_free_distribution,
    optimal_coverage,
)
from repro.mechanism import best_two_level_policy, optimal_grant_design
from repro.utils.tables import format_table


def main() -> None:
    # Twelve research topics: a couple of "hot" ones and a tail of neglected ones.
    values = SiteValues.from_values(
        [10.0, 8.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5, 1.2, 1.0, 0.8, 0.6]
    )
    n_researchers = 8

    best = optimal_coverage(values, n_researchers)
    print(f"{values.m} topics, {n_researchers} researchers")
    print(f"Best achievable symmetric coverage: {best:.3f}\n")

    rows = []

    # 1. Laissez-faire: sharing credit, rewards = social values.
    sharing_eq = ideal_free_distribution(values, n_researchers, SharingPolicy())
    sharing_cover = coverage(values, sharing_eq.strategy, n_researchers)
    rows.append(["laissez-faire (sharing)", float(sharing_cover), float(sharing_cover / best), "-"])

    # 2. Kleinberg-Oren reward design: grants sized to steer the sharing IFD to sigma_star.
    design = optimal_grant_design(values, n_researchers)
    rows.append(
        [
            "grant re-pricing (sharing)",
            float(design.induced_coverage),
            float(design.induced_coverage / best),
            f"max grant {design.rewards.max():.2f}",
        ]
    )

    # 3. Congestion design: exclusive credit, original rewards.
    exclusive_eq = ideal_free_distribution(values, n_researchers, ExclusivePolicy())
    exclusive_cover = coverage(values, exclusive_eq.strategy, n_researchers)
    rows.append(
        ["exclusive credit (this paper)", float(exclusive_cover), float(exclusive_cover / best), "-"]
    )

    print(format_table(["mechanism", "coverage", "share of optimum", "notes"], rows, precision=4))

    # How far can a partial-credit rule go?  Sweep the two-level family.
    best_c, sweep_rows = best_two_level_policy(
        values, n_researchers, c_grid=np.linspace(-0.5, 0.5, 41)
    )
    print(
        f"\nSweeping collision credit c over [-0.5, 0.5]: the coverage-maximising"
        f"\ncollision credit is c = {best_c:.3f} (the exclusive rule), with coverage"
        f" {max(r.equilibrium_coverage for r in sweep_rows):.4f}."
    )

    print(
        "\nTakeaway: re-pricing grants and hardening the credit rule achieve the same"
        "\n(optimal) coverage, but the credit-rule route needs neither topic-specific"
        "\ngrant sizes nor knowledge of how many researchers will participate."
    )


if __name__ == "__main__":
    main()
