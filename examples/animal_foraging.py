#!/usr/bin/env python
"""Animal dispersal scenario: how aggression level shapes group coverage.

Section 5.2 of the paper discusses two species that exploit the same patches
but differ in how aggressively individuals treat conspecifics.  This example
models a colony of foragers (think of the bat colonies of Section 1.4 breaking
into foraging groups) dispersing over patches of food each night, under three
"social rules":

* peaceful sharing   — colliding foragers split the patch (``C_share``),
* exclusive conflict — colliding foragers block each other and get nothing,
* costly aggression  — colliding foragers fight and end up worse than nothing.

For each rule we compute the evolutionarily stable dispersal pattern (the IFD),
its coverage — the amount of food removed from the environment, which is what
matters when a competing species feeds on the same patches later — and the
average individual intake.  We then let the population *evolve* the dispersal
pattern via replicator dynamics and simulate actual foraging nights.

Run with::

    python examples/animal_foraging.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggressivePolicy,
    ExclusivePolicy,
    SharingPolicy,
    SiteValues,
    coverage,
    ideal_free_distribution,
    individual_payoff,
    optimal_coverage,
)
from repro.dynamics import replicator_dynamics
from repro.simulation import simulate_dispersal
from repro.utils.tables import format_table


def build_environment(rng: np.random.Generator) -> SiteValues:
    """A patchy environment: a few rich patches and a long tail of poor ones."""
    rich = rng.uniform(5.0, 10.0, size=4)
    medium = rng.uniform(1.0, 4.0, size=8)
    poor = rng.uniform(0.1, 0.9, size=12)
    return SiteValues.from_values(np.concatenate([rich, medium, poor]))


def main() -> None:
    rng = np.random.default_rng(7)
    values = build_environment(rng)
    group_size = 10  # foragers dispersing each night

    policies = {
        "peaceful sharing": SharingPolicy(),
        "exclusive conflict": ExclusivePolicy(),
        "costly aggression": AggressivePolicy(penalty=0.5),
    }

    print(f"Environment: {values.m} patches, total food {values.total:.2f}")
    print(f"Group size: {group_size} foragers")
    print(f"Best possible symmetric coverage: {optimal_coverage(values, group_size):.3f}\n")

    rows = []
    for name, policy in policies.items():
        # Evolutionarily stable dispersal (the IFD of this social rule).
        equilibrium = ideal_free_distribution(values, group_size, policy)
        eq_cover = coverage(values, equilibrium.strategy, group_size)
        intake = individual_payoff(values, equilibrium.strategy, group_size, policy)

        # Sanity: a population adapting by replicator dynamics reaches the same pattern.
        evolved = replicator_dynamics(values, group_size, policy, max_iter=40_000)
        drift = evolved.strategy.total_variation(equilibrium.strategy)

        # Simulate 20 000 foraging nights.
        nights = simulate_dispersal(
            values, equilibrium.strategy, group_size, policy, 20_000, rng=rng
        )

        rows.append(
            [
                name,
                float(eq_cover),
                float(eq_cover / optimal_coverage(values, group_size)),
                float(intake),
                float(nights.collision_rate),
                equilibrium.support_size,
                float(drift),
            ]
        )

    print(
        format_table(
            [
                "social rule",
                "coverage",
                "share of optimum",
                "individual intake",
                "collision rate",
                "patches used",
                "replicator drift",
            ],
            rows,
            precision=3,
        )
    )

    print(
        "\nReading the table: the exclusive rule ('Judgment of Solomon') achieves the"
        "\noptimal coverage — better than peaceful sharing, which over-crowds the rich"
        "\npatches, and better than costly aggression, which over-disperses the group."
        "\nIndividual intake is highest under sharing: what is good for the group (in"
        "\ncompetition with other groups) is not what maximises individual payoff."
    )


if __name__ == "__main__":
    main()
