#!/usr/bin/env python
"""Reproduce Figure 1: coverage as a function of the competition extent.

Two players compete over two sites (``f = (1, 0.3)`` and ``f = (1, 0.5)``); the
collision payoff ``c`` of the congestion family ``C_c`` ranges over
``[-0.5, 0.5]``.  The script prints the three curves of the paper's Figure 1
(ESS coverage, optimal coverage, welfare-optimal coverage) as an ASCII plot,
reports the key qualitative facts, and writes the numeric series to CSV.

Run with::

    python examples/competition_sweep.py [--points 51] [output_dir]

``--points`` controls the resolution of the ``c`` grid (the paper-quality
default is 51; the test suite runs a coarse grid for speed).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.figure1 import figure1_panels, write_figure1_csv
from repro.analysis.reporting import figure1_report


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Reproduce Figure 1.")
    parser.add_argument(
        "output_dir", nargs="?", type=Path, default=Path("results"),
        help="Directory the CSV series are written to.",
    )
    parser.add_argument(
        "--points", type=int, default=51, help="Grid points on c in [-0.5, 0.5]."
    )
    parser.add_argument(
        "--welfare-grid-points", type=int, default=1001,
        help="Resolution of the welfare-optimum search.",
    )
    args = parser.parse_args(argv)

    c_grid = np.linspace(-0.5, 0.5, args.points)
    panels = figure1_panels(c_grid=c_grid, welfare_grid_points=args.welfare_grid_points)

    print(figure1_report(panels))

    print("\nKey facts reproduced from the paper:")
    for name, panel in panels.items():
        print(
            f"  panel {name}: ESS coverage peaks at c = {panel.argmax_c:+.3f} "
            f"with gap {panel.peak_gap:.2e} to the optimum "
            f"(optimum coverage {panel.optimal_coverage:.4f})"
        )

    paths = write_figure1_csv(
        args.output_dir, c_grid=c_grid, welfare_grid_points=args.welfare_grid_points
    )
    print("\nNumeric series written to:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
