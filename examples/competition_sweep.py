#!/usr/bin/env python
"""Reproduce Figure 1: coverage as a function of the competition extent.

Two players compete over two sites (``f = (1, 0.3)`` and ``f = (1, 0.5)``); the
collision payoff ``c`` of the congestion family ``C_c`` ranges over
``[-0.5, 0.5]``.  The script prints the three curves of the paper's Figure 1
(ESS coverage, optimal coverage, welfare-optimal coverage) as an ASCII plot,
reports the key qualitative facts, and writes the numeric series to CSV.

Run with::

    python examples/competition_sweep.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.analysis.figure1 import figure1_panels, write_figure1_csv
from repro.analysis.reporting import figure1_report


def main() -> None:
    c_grid = np.linspace(-0.5, 0.5, 51)
    panels = figure1_panels(c_grid=c_grid, welfare_grid_points=1001)

    print(figure1_report(panels))

    print("\nKey facts reproduced from the paper:")
    for name, panel in panels.items():
        print(
            f"  panel {name}: ESS coverage peaks at c = {panel.argmax_c:+.3f} "
            f"with gap {panel.peak_gap:.2e} to the optimum "
            f"(optimum coverage {panel.optimal_coverage:.4f})"
        )

    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    paths = write_figure1_csv(output_dir, c_grid=c_grid, welfare_grid_points=1001)
    print("\nNumeric series written to:")
    for path in paths:
        print(f"  {path}")


if __name__ == "__main__":
    main()
