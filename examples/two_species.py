#!/usr/bin/env python
"""Two species, one patch set: does within-group aggression pay off?

Section 5.2 of the paper suggests an experiment: two species exploit the same
patches at different times of the day and differ only in how aggressively
individuals treat members of their *own* species.  Within-group aggression
looks wasteful (collisions destroy value), yet the paper predicts it can make
the species superior, because it drives individuals to cover the patches more
thoroughly, leaving less for the competitor.

This example quantifies that prediction with the *batched* scenario kernel
:func:`repro.batch.scenarios.two_group_competition_batch`: every ordered pair
of within-group rules (sharing / exclusive / costly aggression) becomes one
row of a ``(B,)`` policy-pair roster, and a single call reports how the
environment is split when one species feeds first and the other feeds on the
leftovers.

Run with::

    python examples/two_species.py
"""

from __future__ import annotations

import numpy as np

from repro import AggressivePolicy, ExclusivePolicy, SharingPolicy, SiteValues, optimal_coverage
from repro.batch import two_group_competition_batch
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(11)
    values = SiteValues.random(30, rng, low=0.1, high=5.0)
    group_size = 12

    rules = {
        "peaceful (sharing)": SharingPolicy(),
        "exclusive": ExclusivePolicy(),
        "aggressive (c=-0.5)": AggressivePolicy(0.5),
    }

    print(f"{values.m} patches, total food {values.total:.2f}, "
          f"{group_size} foragers per species")
    print(f"Best symmetric single-species coverage: {optimal_coverage(values, group_size):.3f}\n")

    # The whole matchup roster — every ordered pair of distinct rules, sharing
    # one instance — is a (B,) batch solved in grouped batched-IFD passes.
    matchups = [
        (first_name, second_name)
        for first_name in rules
        for second_name in rules
        if first_name != second_name
    ]
    outcome = two_group_competition_batch(
        [values] * len(matchups),
        [rules[first] for first, _ in matchups],
        [rules[second] for _, second in matchups],
        k_first=group_size,
    )
    rows = [
        [
            first_name,
            second_name,
            float(outcome.first_consumption[index]),
            float(outcome.second_consumption[index]),
            float(outcome.first_shares[index]),
            float(outcome.first_individual_payoffs[index]),
        ]
        for index, (first_name, second_name) in enumerate(matchups)
    ]

    print(
        format_table(
            [
                "species feeding first",
                "species feeding second",
                "first eats",
                "second eats",
                "first's share",
                "first's per-capita payoff",
            ],
            rows,
            precision=3,
        )
    )

    print(
        "\nReading the table: whichever species internalises the exclusive rule eats"
        "\nthe most when it feeds first and concedes the least when it feeds second."
        "\nThe peaceful sharing species enjoys the highest per-capita payoff within its"
        "\nown rows, but that is exactly the paper's point — individual comfort and"
        "\ngroup-level competitiveness pull in different directions, and intense"
        "\n(but not punitive) competition aligns the two."
    )


if __name__ == "__main__":
    main()
