#!/usr/bin/env python
"""Two species, one patch set: does within-group aggression pay off?

Section 5.2 of the paper suggests an experiment: two species exploit the same
patches at different times of the day and differ only in how aggressively
individuals treat members of their *own* species.  Within-group aggression
looks wasteful (collisions destroy value), yet the paper predicts it can make
the species superior, because it drives individuals to cover the patches more
thoroughly, leaving less for the competitor.

This example quantifies that prediction with the
:mod:`repro.extensions.group_competition` model: for each pair of within-group
rules (sharing / exclusive / costly aggression) it reports how the environment
is split when one species feeds first and the other feeds on the leftovers.

Run with::

    python examples/two_species.py
"""

from __future__ import annotations

import numpy as np

from repro import AggressivePolicy, ExclusivePolicy, SharingPolicy, SiteValues, optimal_coverage
from repro.extensions import two_group_competition
from repro.utils.tables import format_table


def main() -> None:
    rng = np.random.default_rng(11)
    values = SiteValues.random(30, rng, low=0.1, high=5.0)
    group_size = 12

    rules = {
        "peaceful (sharing)": SharingPolicy(),
        "exclusive": ExclusivePolicy(),
        "aggressive (c=-0.5)": AggressivePolicy(0.5),
    }

    print(f"{values.m} patches, total food {values.total:.2f}, "
          f"{group_size} foragers per species")
    print(f"Best symmetric single-species coverage: {optimal_coverage(values, group_size):.3f}\n")

    rows = []
    for first_name, first_rule in rules.items():
        for second_name, second_rule in rules.items():
            if first_name == second_name:
                continue
            outcome = two_group_competition(
                values, first_rule, second_rule, k_first=group_size
            )
            rows.append(
                [
                    first_name,
                    second_name,
                    float(outcome.first_consumption),
                    float(outcome.second_consumption),
                    float(outcome.first_share),
                    float(outcome.first_individual_payoff),
                ]
            )

    print(
        format_table(
            [
                "species feeding first",
                "species feeding second",
                "first eats",
                "second eats",
                "first's share",
                "first's per-capita payoff",
            ],
            rows,
            precision=3,
        )
    )

    print(
        "\nReading the table: whichever species internalises the exclusive rule eats"
        "\nthe most when it feeds first and concedes the least when it feeds second."
        "\nThe peaceful sharing species enjoys the highest per-capita payoff within its"
        "\nown rows, but that is exactly the paper's point — individual comfort and"
        "\ngroup-level competitiveness pull in different directions, and intense"
        "\n(but not punitive) competition aligns the two."
    )


if __name__ == "__main__":
    main()
