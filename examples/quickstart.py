#!/usr/bin/env python
"""Quickstart: the dispersal game in ten steps.

This example walks through the core objects of the library on a small instance:
build a value profile, compute the coverage-optimal strategy (``sigma_star``),
compare congestion policies, verify the equilibrium / ESS properties, and
cross-check everything with a Monte-Carlo simulation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ExclusivePolicy,
    SharingPolicy,
    SiteValues,
    Strategy,
    coverage,
    ess_report,
    full_coordination_coverage,
    ideal_free_distribution,
    observation1_lower_bound,
    optimal_coverage,
    sigma_star,
    spoa_instance,
)
from repro.simulation import simulate_dispersal
from repro.utils.tables import format_table


def main() -> None:
    # 1. An environment: eight patches whose quality decays geometrically.
    values = SiteValues.geometric(8, ratio=0.7)
    k = 4  # four foragers disperse over the patches
    print("Site values f(x):", np.round(values.as_array(), 4))

    # 2. The coverage-optimal symmetric strategy is the paper's sigma_star.
    star = sigma_star(values, k)
    print(f"\nsigma_star (support W={star.support_size}, alpha={star.alpha:.4f}):")
    print("  probabilities:", np.round(star.strategy.as_array(), 4))
    print(f"  optimal coverage Cover(p*) = {optimal_coverage(values, k):.4f}")
    print(f"  full-coordination top-k    = {full_coordination_coverage(values, k):.4f}")
    print(f"  Observation-1 lower bound  = {observation1_lower_bound(values, k):.4f}")

    # 3. Equilibria under different congestion policies.
    rows = []
    for policy in (ExclusivePolicy(), SharingPolicy()):
        equilibrium = ideal_free_distribution(values, k, policy)
        rows.append(
            [
                policy.name,
                float(coverage(values, equilibrium.strategy, k)),
                float(equilibrium.value),
                equilibrium.support_size,
                float(spoa_instance(values, k, policy).ratio),
            ]
        )
    print("\nEquilibrium outcome by congestion policy:")
    print(format_table(["policy", "coverage", "player payoff", "support", "SPoA"], rows, precision=4))

    # 4. Under the exclusive policy the equilibrium is also an ESS (Theorem 3).
    audit = ess_report(values, star.strategy, k, ExclusivePolicy(), n_random_mutants=20, rng=0)
    print(
        f"\nESS audit of sigma_star: resisted {audit.n_resisted}/{audit.n_mutants} mutants, "
        f"worst strict margin {audit.worst_margin:.2e}"
    )

    # 5. Monte-Carlo cross-check of the analytic coverage.
    simulated = simulate_dispersal(values, star.strategy, k, ExclusivePolicy(), 50_000, rng=1)
    print(
        f"\nSimulated coverage over 50k games: {simulated.coverage_mean:.4f} "
        f"(exact {coverage(values, star.strategy, k):.4f}, "
        f"std. error {simulated.coverage_sem:.4f})"
    )
    print(f"Simulated collision rate: {simulated.collision_rate:.3f}")

    # 6. For contrast: a naive strategy loses coverage.
    naive = Strategy.proportional(values.as_array())
    print(f"\nValue-proportional strategy coverage: {coverage(values, naive, k):.4f} "
          f"(optimal is {optimal_coverage(values, k):.4f})")


if __name__ == "__main__":
    main()
