#!/usr/bin/env python
"""Parallel Bayesian search: the Korman-Rodeh connection.

The paper observes that ``sigma_star`` coincides with the first round of the
``A*`` algorithm for parallel search without coordination: ``k`` searchers look
for a treasure hidden in one of ``M`` boxes according to a known prior, each
opening one box per round, with no communication.

This example compares round strategies on a Zipf prior: the ``sigma_star``
strategy (optimal single-round success probability), uniform sampling,
prior-proportional sampling, and greedy splitting of the top-``k`` boxes.  It
reports the closed-form success probabilities and expected discovery times for
memoryless repetition, and validates them with a Monte-Carlo search simulation.

Run with::

    python examples/parallel_search.py
"""

from __future__ import annotations

from repro.search import (
    BayesianSearchProblem,
    compare_search_strategies,
    expected_discovery_time,
    proportional_strategy,
    sigma_star_strategy,
    simulate_search,
    uniform_strategy,
)
from repro.utils.tables import format_table


def main() -> None:
    problem = BayesianSearchProblem.zipf(100, exponent=1.0)
    k = 6

    print(f"{problem.m} boxes, Zipf prior, {k} independent searchers\n")

    report = compare_search_strategies(problem, k)
    rows = [
        [name, entry["success_probability"], entry["expected_rounds"]]
        for name, entry in sorted(
            report.items(), key=lambda item: -item[1]["success_probability"]
        )
    ]
    print("Closed-form comparison of round strategies (memoryless repetition):")
    print(
        format_table(
            ["round strategy", "P[found in round 1]", "expected rounds"], rows, precision=4
        )
    )
    print(
        "\nNote: sigma_star maximises the single-round success probability (Theorem 4"
        "\napplied to the prior), but because it ignores low-prior boxes entirely, naive"
        "\nrepetition of the same round never finds a treasure hidden there — the full"
        "\nA* algorithm changes the distribution between rounds."
    )

    # Monte-Carlo validation for two strategies whose expected time is finite.
    print("\nMonte-Carlo validation (30 000 simulated searches each):")
    validation_rows = []
    for name, strategy in (
        ("uniform", uniform_strategy(problem)),
        ("proportional", proportional_strategy(problem)),
    ):
        outcome = simulate_search(problem, strategy, k, 30_000, max_rounds=5_000, rng=0)
        validation_rows.append(
            [
                name,
                expected_discovery_time(problem, strategy, k),
                outcome.mean_rounds_when_found,
                outcome.success_rate,
            ]
        )
    print(
        format_table(
            ["round strategy", "expected rounds (exact)", "mean rounds (simulated)", "success rate"],
            validation_rows,
            precision=3,
        )
    )

    # First-round head-to-head including sigma_star.
    star = sigma_star_strategy(problem, k)
    outcome = simulate_search(problem, star, k, 30_000, max_rounds=1, rng=1)
    print(
        f"\nsigma_star first-round success (simulated): {outcome.round_one_success_rate:.4f} "
        f"vs exact {report['sigma_star']['success_probability']:.4f}"
    )


if __name__ == "__main__":
    main()
